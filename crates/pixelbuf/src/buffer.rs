//! The software framebuffer.

use crate::geometry::{Rect, Resolution};
use crate::pixel::{Pixel, PixelFormat};

/// A software framebuffer: a dense row-major grid of [`Pixel`]s with a
/// monotonically increasing *generation* counter bumped on every write
/// batch.
///
/// The generation is how the compositor and the content-rate meter cheaply
/// detect "the framebuffer was updated" without watching individual pixels;
/// the *content* comparison (did the pixels actually change?) is the
/// meter's job.
///
/// # Examples
///
/// ```
/// use ccdem_pixelbuf::buffer::FrameBuffer;
/// use ccdem_pixelbuf::geometry::Resolution;
/// use ccdem_pixelbuf::pixel::Pixel;
///
/// let mut fb = FrameBuffer::new(Resolution::new(4, 4));
/// fb.fill(Pixel::WHITE);
/// assert_eq!(fb.pixel(2, 3), Pixel::WHITE);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrameBuffer {
    resolution: Resolution,
    format: PixelFormat,
    pixels: Vec<Pixel>,
    generation: u64,
}

impl FrameBuffer {
    /// Creates a black framebuffer of the given resolution in RGBA8888.
    pub fn new(resolution: Resolution) -> FrameBuffer {
        FrameBuffer::with_format(resolution, PixelFormat::Rgba8888)
    }

    /// Creates a black framebuffer with an explicit pixel format.
    pub fn with_format(resolution: Resolution, format: PixelFormat) -> FrameBuffer {
        FrameBuffer {
            resolution,
            format,
            pixels: vec![Pixel::BLACK; resolution.pixel_count()],
            generation: 0,
        }
    }

    /// The buffer's resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The buffer's pixel format.
    pub fn format(&self) -> PixelFormat {
        self.format
    }

    /// The write-generation counter.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Marks the buffer as updated without changing pixels. The compositor
    /// calls this when an application submits a frame whose content is
    /// identical to the previous one (a *redundant frame*): the hardware
    /// still performs a framebuffer write.
    pub fn touch(&mut self) {
        self.generation += 1;
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is off-screen.
    pub fn pixel(&self, x: u32, y: u32) -> Pixel {
        assert!(
            self.resolution.contains(x, y),
            "pixel ({x},{y}) out of bounds for {}",
            self.resolution
        );
        self.pixels[self.index(x, y)]
    }

    /// Writes the pixel at `(x, y)` (quantized to the buffer format) and
    /// bumps the generation.
    ///
    /// Prefer the batch operations ([`fill`](Self::fill),
    /// [`fill_rect`](Self::fill_rect), [`copy_from`](Self::copy_from)) for
    /// anything larger than a few pixels: they bump the generation once.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is off-screen.
    pub fn set_pixel(&mut self, x: u32, y: u32, p: Pixel) {
        assert!(
            self.resolution.contains(x, y),
            "pixel ({x},{y}) out of bounds for {}",
            self.resolution
        );
        let i = self.index(x, y);
        self.pixels[i] = self.format.quantize(p);
        self.generation += 1;
    }

    /// Fills the whole buffer with one colour.
    pub fn fill(&mut self, p: Pixel) {
        let q = self.format.quantize(p);
        self.pixels.fill(q);
        self.generation += 1;
    }

    /// Fills `rect` (clipped to the screen) with one colour. A fully
    /// off-screen rect still counts as a write (generation bump), matching
    /// hardware behaviour where the draw call is issued regardless.
    pub fn fill_rect(&mut self, rect: Rect, p: Pixel) {
        let q = self.format.quantize(p);
        if let Some(r) = rect.clipped_to(self.resolution) {
            for y in r.y..r.bottom() {
                let row = self.index(r.x, y);
                self.pixels[row..row + r.width as usize].fill(q);
            }
        }
        self.generation += 1;
    }

    /// Copies the entirety of `src` into this buffer.
    ///
    /// # Panics
    ///
    /// Panics if resolutions differ.
    pub fn copy_from(&mut self, src: &FrameBuffer) {
        assert_eq!(
            self.resolution, src.resolution,
            "copy_from requires matching resolutions"
        );
        if self.format == src.format {
            self.pixels.copy_from_slice(&src.pixels);
        } else {
            for (dst, &s) in self.pixels.iter_mut().zip(&src.pixels) {
                *dst = self.format.quantize(s);
            }
        }
        self.generation += 1;
    }

    /// Copies `rect` (clipped) from `src` into the same position here.
    ///
    /// # Panics
    ///
    /// Panics if resolutions differ.
    pub fn copy_rect_from(&mut self, src: &FrameBuffer, rect: Rect) {
        assert_eq!(
            self.resolution, src.resolution,
            "copy_rect_from requires matching resolutions"
        );
        if let Some(r) = rect.clipped_to(self.resolution) {
            for y in r.y..r.bottom() {
                let i = self.index(r.x, y);
                let w = r.width as usize;
                if self.format == src.format {
                    let (a, b) = (i, i + w);
                    self.pixels[a..b].copy_from_slice(&src.pixels[a..b]);
                } else {
                    for dx in 0..w {
                        self.pixels[i + dx] = self.format.quantize(src.pixels[i + dx]);
                    }
                }
            }
        }
        self.generation += 1;
    }

    /// Shifts the buffer contents up by `dy` pixels (a scroll), filling the
    /// exposed bottom band with `fill`.
    pub fn scroll_up(&mut self, dy: u32, fill: Pixel) {
        let h = self.resolution.height;
        let w = self.resolution.width as usize;
        let dy = dy.min(h);
        if dy > 0 && dy < h {
            let shift = dy as usize * w;
            self.pixels.copy_within(shift.., 0);
        }
        let q = self.format.quantize(fill);
        let start = ((h - dy) as usize) * w;
        self.pixels[start..].fill(q);
        self.generation += 1;
    }

    /// A read-only view of all pixels in row-major order.
    pub fn as_pixels(&self) -> &[Pixel] {
        &self.pixels
    }

    /// Mean luminance of the whole buffer in `[0, 1]`.
    ///
    /// This is an O(pixels) scan; it exists for the OLED power extension
    /// and for tests, not for the per-frame hot path.
    pub fn mean_luminance(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|p| p.luminance()).sum::<f64>() / self.pixels.len() as f64
    }

    fn index(&self, x: u32, y: u32) -> usize {
        (y as usize) * (self.resolution.width as usize) + x as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_buffer_is_black_generation_zero() {
        let fb = FrameBuffer::new(Resolution::new(3, 3));
        assert_eq!(fb.generation(), 0);
        assert!(fb.as_pixels().iter().all(|&p| p == Pixel::BLACK));
    }

    #[test]
    fn writes_bump_generation_once_per_batch() {
        let mut fb = FrameBuffer::new(Resolution::new(8, 8));
        fb.fill(Pixel::WHITE);
        assert_eq!(fb.generation(), 1);
        fb.fill_rect(Rect::new(0, 0, 4, 4), Pixel::BLACK);
        assert_eq!(fb.generation(), 2);
        fb.touch();
        assert_eq!(fb.generation(), 3);
    }

    #[test]
    fn fill_rect_clips_to_screen() {
        let mut fb = FrameBuffer::new(Resolution::new(4, 4));
        fb.fill_rect(Rect::new(2, 2, 10, 10), Pixel::WHITE);
        assert_eq!(fb.pixel(3, 3), Pixel::WHITE);
        assert_eq!(fb.pixel(1, 1), Pixel::BLACK);
    }

    #[test]
    fn copy_from_round_trips() {
        let mut a = FrameBuffer::new(Resolution::new(5, 5));
        a.fill_rect(Rect::new(1, 1, 2, 2), Pixel::rgb(9, 9, 9));
        let mut b = FrameBuffer::new(Resolution::new(5, 5));
        b.copy_from(&a);
        assert_eq!(a.as_pixels(), b.as_pixels());
    }

    #[test]
    #[should_panic(expected = "matching resolutions")]
    fn copy_from_rejects_mismatch() {
        let a = FrameBuffer::new(Resolution::new(2, 2));
        let mut b = FrameBuffer::new(Resolution::new(3, 3));
        b.copy_from(&a);
    }

    #[test]
    fn scroll_up_moves_rows() {
        let mut fb = FrameBuffer::new(Resolution::new(2, 4));
        fb.fill_rect(Rect::new(0, 0, 2, 1), Pixel::WHITE); // top row white
        fb.scroll_up(1, Pixel::grey(7));
        // White row moved off the top; bottom row filled with grey.
        assert!(fb.as_pixels()[..6].iter().all(|&p| p == Pixel::BLACK));
        assert!(fb.as_pixels()[6..].iter().all(|&p| p == Pixel::grey(7)));
    }

    #[test]
    fn scroll_up_full_height_clears() {
        let mut fb = FrameBuffer::new(Resolution::new(2, 2));
        fb.fill(Pixel::WHITE);
        fb.scroll_up(5, Pixel::BLACK);
        assert!(fb.as_pixels().iter().all(|&p| p == Pixel::BLACK));
    }

    #[test]
    fn rgb565_buffer_quantizes_writes() {
        let mut fb = FrameBuffer::with_format(Resolution::new(2, 2), PixelFormat::Rgb565);
        fb.set_pixel(0, 0, Pixel::rgb(0xFF, 0xFF, 0xFF));
        assert_eq!(fb.pixel(0, 0), Pixel::rgb(0xF8, 0xFC, 0xF8));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_oob_panics() {
        let fb = FrameBuffer::new(Resolution::new(2, 2));
        let _ = fb.pixel(2, 0);
    }

    #[test]
    fn mean_luminance_of_half_white() {
        let mut fb = FrameBuffer::new(Resolution::new(2, 2));
        fb.fill_rect(Rect::new(0, 0, 2, 1), Pixel::WHITE);
        assert!((fb.mean_luminance() - 0.5).abs() < 1e-9);
    }
}
