//! The software framebuffer.

use crate::damage::DamageRegion;
use crate::geometry::{Rect, Resolution};
use crate::pixel::{Pixel, PixelFormat};
use crate::tile::TileMap;

/// A software framebuffer: a dense row-major grid of [`Pixel`]s with two
/// monotonically increasing generation counters and a damage region.
///
/// The *write generation* bumps on every write batch, including
/// [`touch`](Self::touch) (a hardware write of identical pixels — the
/// paper's redundant frame). The *content generation* bumps only when a
/// draw op may actually have changed pixel values; those ops also record
/// the written rectangle in the buffer's [`DamageRegion`]. The two
/// counters let consumers distinguish "the framebuffer was updated" (the
/// panel's view) from "the pixels may have changed" (the content-rate
/// meter's view) without reading any pixels, and the damage region tells
/// the meter *where* to look when they did.
///
/// The damage region accumulates until [`take_damage`](Self::take_damage)
/// is called; a pixel outside every accumulated rect is guaranteed to
/// hold the same value it had at the last take.
///
/// Alongside the damage region, every draw op also maintains a
/// [`TileMap`] of per-tile content signatures (stamp + provable solid
/// colour) inside the same row walks — see [`tiles`](Self::tiles) and
/// the [`tile`](crate::tile) module.
///
/// # Examples
///
/// ```
/// use ccdem_pixelbuf::buffer::FrameBuffer;
/// use ccdem_pixelbuf::geometry::Resolution;
/// use ccdem_pixelbuf::pixel::Pixel;
///
/// let mut fb = FrameBuffer::new(Resolution::new(4, 4));
/// fb.fill(Pixel::WHITE);
/// assert_eq!(fb.pixel(2, 3), Pixel::WHITE);
/// assert_eq!(fb.content_generation(), 1);
///
/// fb.touch(); // identical resubmission: a write, but not new content
/// assert_eq!(fb.generation(), 2);
/// assert_eq!(fb.content_generation(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrameBuffer {
    resolution: Resolution,
    format: PixelFormat,
    pixels: Vec<Pixel>,
    generation: u64,
    content_generation: u64,
    damage: DamageRegion,
    tiles: TileMap,
}

impl FrameBuffer {
    /// Creates a black framebuffer of the given resolution in RGBA8888.
    pub fn new(resolution: Resolution) -> FrameBuffer {
        FrameBuffer::with_format(resolution, PixelFormat::Rgba8888)
    }

    /// Creates a black framebuffer with an explicit pixel format.
    pub fn with_format(resolution: Resolution, format: PixelFormat) -> FrameBuffer {
        FrameBuffer {
            resolution,
            format,
            pixels: vec![Pixel::BLACK; resolution.pixel_count()],
            generation: 0,
            content_generation: 0,
            damage: DamageRegion::new(),
            tiles: TileMap::new(resolution),
        }
    }

    /// Rebuilds a framebuffer from recycled pixel `storage`: the
    /// observable state is identical to [`new`](Self::new) (black RGBA8888
    /// pixels, both generations zero, empty damage), but the storage's
    /// allocation is reused. This is the steady-state path of scratch
    /// reuse across sweep runs — pair it with
    /// [`into_storage`](Self::into_storage).
    pub fn recycled(resolution: Resolution, mut storage: Vec<Pixel>) -> FrameBuffer {
        storage.clear();
        storage.resize(resolution.pixel_count(), Pixel::BLACK);
        FrameBuffer {
            resolution,
            format: PixelFormat::Rgba8888,
            pixels: storage,
            generation: 0,
            content_generation: 0,
            damage: DamageRegion::new(),
            tiles: TileMap::new(resolution),
        }
    }

    /// Consumes the buffer, handing its pixel storage back for recycling
    /// (see [`recycled`](Self::recycled)).
    pub fn into_storage(self) -> Vec<Pixel> {
        self.pixels
    }

    /// The buffer's resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The buffer's pixel format.
    pub fn format(&self) -> PixelFormat {
        self.format
    }

    /// The write-generation counter.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The content-generation counter: bumps only when a draw op may have
    /// changed pixel values. Unchanged content generation between two
    /// observations guarantees the pixels are bit-identical — the
    /// content-rate meter's O(1) redundant-frame fast path.
    pub fn content_generation(&self) -> u64 {
        self.content_generation
    }

    /// The per-tile content signatures, updated by every draw op. Tiles
    /// whose `stamp` is at most an observer's last seen content
    /// generation are provably unchanged since that observation; tiles
    /// with a `solid` colour are provably that exact colour everywhere.
    pub fn tiles(&self) -> &TileMap {
        &self.tiles
    }

    /// The damage accumulated since the last
    /// [`take_damage`](Self::take_damage): a sound over-approximation of
    /// every pixel written in between.
    pub fn damage(&self) -> &DamageRegion {
        &self.damage
    }

    /// Consumes the accumulated damage, resetting it to empty. The
    /// content-rate meter (via the compositor) calls this once per
    /// composed frame, so the region always describes "what changed since
    /// the meter last looked".
    pub fn take_damage(&mut self) -> DamageRegion {
        self.damage.take()
    }

    /// Marks the buffer as updated without changing pixels. The compositor
    /// calls this when an application submits a frame whose content is
    /// identical to the previous one (a *redundant frame*): the hardware
    /// still performs a framebuffer write. Bumps only the write
    /// generation, never the content generation.
    pub fn touch(&mut self) {
        self.generation += 1;
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is off-screen.
    pub fn pixel(&self, x: u32, y: u32) -> Pixel {
        assert!(
            self.resolution.contains(x, y),
            "pixel ({x},{y}) out of bounds for {}",
            self.resolution
        );
        self.pixels.get(self.index(x, y)).copied().unwrap_or(Pixel::BLACK)
    }

    /// Writes the pixel at `(x, y)` (quantized to the buffer format) and
    /// bumps the generation.
    ///
    /// Prefer the batch operations ([`fill`](Self::fill),
    /// [`fill_rect`](Self::fill_rect), [`copy_from`](Self::copy_from)) for
    /// anything larger than a few pixels: they bump the generation once.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is off-screen.
    pub fn set_pixel(&mut self, x: u32, y: u32, p: Pixel) {
        assert!(
            self.resolution.contains(x, y),
            "pixel ({x},{y}) out of bounds for {}",
            self.resolution
        );
        let i = self.index(x, y);
        let q = self.format.quantize(p);
        if let Some(slot) = self.pixels.get_mut(i) {
            *slot = q;
        }
        self.mark(Rect::new(x, y, 1, 1), Some(q));
    }

    /// Fills the whole buffer with one colour.
    pub fn fill(&mut self, p: Pixel) {
        let q = self.format.quantize(p);
        self.pixels.fill(q);
        self.mark(self.resolution.bounds(), Some(q));
    }

    /// Fills `rect` (clipped to the screen) with one colour. A fully
    /// off-screen rect still counts as a write (generation bump), matching
    /// hardware behaviour where the draw call is issued regardless.
    pub fn fill_rect(&mut self, rect: Rect, p: Pixel) {
        let q = self.format.quantize(p);
        let clipped = rect.clipped_to(self.resolution);
        if let Some(r) = clipped {
            for y in r.y..r.bottom() {
                let row = self.index(r.x, y);
                if let Some(seg) = self.pixels.get_mut(row..row + r.width as usize) {
                    seg.fill(q);
                }
            }
        }
        self.mark(clipped.unwrap_or_default(), Some(q));
    }

    /// Copies the entirety of `src` into this buffer.
    ///
    /// # Panics
    ///
    /// Panics if resolutions differ.
    pub fn copy_from(&mut self, src: &FrameBuffer) {
        assert_eq!(
            self.resolution, src.resolution,
            "copy_from requires matching resolutions"
        );
        if self.format == src.format {
            self.pixels.copy_from_slice(&src.pixels);
        } else {
            for (dst, &s) in self.pixels.iter_mut().zip(&src.pixels) {
                *dst = self.format.quantize(s);
            }
        }
        self.mark_copied(self.resolution.bounds(), src);
    }

    /// Copies `rect` (clipped) from `src` into the same position here.
    ///
    /// # Panics
    ///
    /// Panics if resolutions differ.
    pub fn copy_rect_from(&mut self, src: &FrameBuffer, rect: Rect) {
        assert_eq!(
            self.resolution, src.resolution,
            "copy_rect_from requires matching resolutions"
        );
        let clipped = rect.clipped_to(self.resolution);
        if let Some(r) = clipped {
            let convert = self.format != src.format;
            let format = self.format;
            let w = r.width as usize;
            for y in r.y..r.bottom() {
                let i = self.index(r.x, y);
                // Clipping keeps `i..i + w` inside both buffers (the
                // resolutions match), so the lookups never miss.
                let (Some(dst), Some(from)) =
                    (self.pixels.get_mut(i..i + w), src.pixels.get(i..i + w))
                else {
                    continue;
                };
                if convert {
                    for (d, &s) in dst.iter_mut().zip(from) {
                        *d = format.quantize(s);
                    }
                } else {
                    dst.copy_from_slice(from);
                }
            }
        }
        self.mark_copied(clipped.unwrap_or_default(), src);
    }

    /// Alpha-blends `rect` (clipped) of `src` over the same position here,
    /// quantizing the blend result to this buffer's format. This is the
    /// compositor's translucent-surface path, expressed as one batch op so
    /// it costs a single generation bump and one damage rect instead of a
    /// per-pixel [`set_pixel`](Self::set_pixel) storm.
    ///
    /// # Panics
    ///
    /// Panics if resolutions differ.
    pub fn blend_rect_from(&mut self, src: &FrameBuffer, rect: Rect) {
        assert_eq!(
            self.resolution, src.resolution,
            "blend_rect_from requires matching resolutions"
        );
        let clipped = rect.clipped_to(self.resolution);
        if let Some(r) = clipped {
            let format = self.format;
            let w = r.width as usize;
            for y in r.y..r.bottom() {
                let i = self.index(r.x, y);
                // Same bound as copy_rect_from: clipped to both buffers.
                let (Some(dst), Some(from)) =
                    (self.pixels.get_mut(i..i + w), src.pixels.get(i..i + w))
                else {
                    continue;
                };
                for (d, &s) in dst.iter_mut().zip(from) {
                    *d = format.quantize(s.over(*d));
                }
            }
        }
        // Blend results depend on prior destination pixels, so the tiles
        // degrade to unknown content.
        self.mark(clipped.unwrap_or_default(), None);
    }

    /// Shifts the buffer contents up by `dy` pixels (a scroll), filling the
    /// exposed bottom band with `fill`.
    pub fn scroll_up(&mut self, dy: u32, fill: Pixel) {
        let h = self.resolution.height;
        let w = self.resolution.width as usize;
        let dy = dy.min(h);
        if dy > 0 && dy < h {
            let shift = dy as usize * w;
            self.pixels.copy_within(shift.., 0);
        }
        let q = self.format.quantize(fill);
        let start = ((h - dy) as usize) * w;
        if let Some(seg) = self.pixels.get_mut(start..) {
            seg.fill(q);
        }
        if dy >= h {
            // The whole screen is the fill colour: a provably solid write.
            self.mark(self.resolution.bounds(), Some(q));
        } else if dy > 0 {
            self.mark(self.resolution.bounds(), None);
        } else {
            self.mark(Rect::default(), None);
        }
    }

    /// A read-only view of all pixels in row-major order.
    pub fn as_pixels(&self) -> &[Pixel] {
        &self.pixels
    }

    /// Mean luminance of the whole buffer in `[0, 1]`.
    ///
    /// This is an O(pixels) scan; it exists for the OLED power extension
    /// and for tests, not for the per-frame hot path.
    pub fn mean_luminance(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|p| p.luminance()).sum::<f64>() / self.pixels.len() as f64
    }

    fn index(&self, x: u32, y: u32) -> usize {
        (y as usize) * (self.resolution.width as usize) + x as usize
    }

    /// Records one completed write batch: the write generation always
    /// bumps (the hardware write happened), while the content generation,
    /// damage, and tile signatures only advance when pixels may actually
    /// have changed — i.e. when the written region is non-empty. A fully
    /// clipped-out draw call therefore counts as a write but not as
    /// content. `solid` is `Some(q)` when the batch stored the exact
    /// value `q` (already format-quantized) at every written pixel.
    fn mark(&mut self, written: Rect, solid: Option<Pixel>) {
        self.generation += 1;
        if !written.is_empty() {
            self.content_generation += 1;
            self.damage.add(written);
            self.tiles.stamp_rect(written, self.content_generation, solid);
        }
    }

    /// [`mark`](Self::mark) variant for whole-region copies from `src`:
    /// the tile signatures inherit the source tiles' solidity (quantized
    /// when the formats differ) instead of degrading to unknown.
    fn mark_copied(&mut self, written: Rect, src: &FrameBuffer) {
        self.generation += 1;
        if !written.is_empty() {
            self.content_generation += 1;
            self.damage.add(written);
            let convert = self.format != src.format;
            let format = self.format;
            self.tiles
                .inherit_rect(written, self.content_generation, &src.tiles, |c| {
                    if convert {
                        format.quantize(c)
                    } else {
                        c
                    }
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_buffer_is_black_generation_zero() {
        let fb = FrameBuffer::new(Resolution::new(3, 3));
        assert_eq!(fb.generation(), 0);
        assert!(fb.as_pixels().iter().all(|&p| p == Pixel::BLACK));
    }

    #[test]
    fn writes_bump_generation_once_per_batch() {
        let mut fb = FrameBuffer::new(Resolution::new(8, 8));
        fb.fill(Pixel::WHITE);
        assert_eq!(fb.generation(), 1);
        fb.fill_rect(Rect::new(0, 0, 4, 4), Pixel::BLACK);
        assert_eq!(fb.generation(), 2);
        fb.touch();
        assert_eq!(fb.generation(), 3);
    }

    #[test]
    fn fill_rect_clips_to_screen() {
        let mut fb = FrameBuffer::new(Resolution::new(4, 4));
        fb.fill_rect(Rect::new(2, 2, 10, 10), Pixel::WHITE);
        assert_eq!(fb.pixel(3, 3), Pixel::WHITE);
        assert_eq!(fb.pixel(1, 1), Pixel::BLACK);
    }

    #[test]
    fn copy_from_round_trips() {
        let mut a = FrameBuffer::new(Resolution::new(5, 5));
        a.fill_rect(Rect::new(1, 1, 2, 2), Pixel::rgb(9, 9, 9));
        let mut b = FrameBuffer::new(Resolution::new(5, 5));
        b.copy_from(&a);
        assert_eq!(a.as_pixels(), b.as_pixels());
    }

    #[test]
    #[should_panic(expected = "matching resolutions")]
    fn copy_from_rejects_mismatch() {
        let a = FrameBuffer::new(Resolution::new(2, 2));
        let mut b = FrameBuffer::new(Resolution::new(3, 3));
        b.copy_from(&a);
    }

    #[test]
    fn scroll_up_moves_rows() {
        let mut fb = FrameBuffer::new(Resolution::new(2, 4));
        fb.fill_rect(Rect::new(0, 0, 2, 1), Pixel::WHITE); // top row white
        fb.scroll_up(1, Pixel::grey(7));
        // White row moved off the top; bottom row filled with grey.
        assert!(fb.as_pixels()[..6].iter().all(|&p| p == Pixel::BLACK));
        assert!(fb.as_pixels()[6..].iter().all(|&p| p == Pixel::grey(7)));
    }

    #[test]
    fn scroll_up_full_height_clears() {
        let mut fb = FrameBuffer::new(Resolution::new(2, 2));
        fb.fill(Pixel::WHITE);
        fb.scroll_up(5, Pixel::BLACK);
        assert!(fb.as_pixels().iter().all(|&p| p == Pixel::BLACK));
    }

    #[test]
    fn rgb565_buffer_quantizes_writes() {
        let mut fb = FrameBuffer::with_format(Resolution::new(2, 2), PixelFormat::Rgb565);
        fb.set_pixel(0, 0, Pixel::rgb(0xFF, 0xFF, 0xFF));
        assert_eq!(fb.pixel(0, 0), Pixel::rgb(0xF8, 0xFC, 0xF8));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_oob_panics() {
        let fb = FrameBuffer::new(Resolution::new(2, 2));
        let _ = fb.pixel(2, 0);
    }

    #[test]
    fn touch_bumps_write_generation_only() {
        let mut fb = FrameBuffer::new(Resolution::new(4, 4));
        fb.fill(Pixel::WHITE);
        assert_eq!((fb.generation(), fb.content_generation()), (1, 1));
        fb.touch();
        fb.touch();
        assert_eq!((fb.generation(), fb.content_generation()), (3, 1));
    }

    #[test]
    fn clipped_out_draw_is_a_write_but_not_content() {
        let mut fb = FrameBuffer::new(Resolution::new(4, 4));
        fb.fill_rect(Rect::new(10, 10, 3, 3), Pixel::WHITE);
        assert_eq!(fb.generation(), 1);
        assert_eq!(fb.content_generation(), 0);
        assert!(fb.damage().is_empty());
    }

    #[test]
    fn draw_ops_accumulate_damage_until_taken() {
        let mut fb = FrameBuffer::new(Resolution::new(8, 8));
        fb.set_pixel(1, 1, Pixel::WHITE);
        fb.fill_rect(Rect::new(4, 4, 2, 2), Pixel::WHITE);
        let damage = fb.take_damage();
        assert_eq!(damage.area(), 5);
        assert!(damage.contains(1, 1));
        assert!(damage.contains(5, 5));
        assert!(!damage.contains(2, 2));
        assert!(fb.damage().is_empty());
        // Taking damage does not disturb either generation.
        assert_eq!((fb.generation(), fb.content_generation()), (2, 2));
    }

    #[test]
    fn full_buffer_ops_damage_everything() {
        let res = Resolution::new(4, 4);
        let mut fb = FrameBuffer::new(res);
        fb.fill(Pixel::WHITE);
        assert_eq!(fb.take_damage().bounding(), res.bounds());
        fb.scroll_up(1, Pixel::BLACK);
        assert_eq!(fb.take_damage().bounding(), res.bounds());
        let src = FrameBuffer::new(res);
        fb.copy_from(&src);
        assert_eq!(fb.take_damage().bounding(), res.bounds());
    }

    #[test]
    fn scroll_by_zero_is_not_content() {
        let mut fb = FrameBuffer::new(Resolution::new(2, 2));
        fb.scroll_up(0, Pixel::WHITE);
        assert_eq!(fb.generation(), 1);
        assert_eq!(fb.content_generation(), 0);
    }

    #[test]
    fn blend_rect_from_matches_per_pixel_over() {
        let res = Resolution::new(4, 4);
        let mut overlay = FrameBuffer::new(res);
        overlay.fill(Pixel::rgba(255, 255, 255, 128));
        let mut dst = FrameBuffer::new(res);
        dst.fill(Pixel::BLACK);
        dst.take_damage();

        let mut reference = dst.clone();
        let rect = Rect::new(1, 1, 2, 2);
        for y in rect.y..rect.bottom() {
            for x in rect.x..rect.right() {
                let s = overlay.pixel(x, y);
                let d = reference.pixel(x, y);
                reference.set_pixel(x, y, s.over(d));
            }
        }

        dst.blend_rect_from(&overlay, rect);
        assert_eq!(dst.as_pixels(), reference.as_pixels());
        assert_eq!(dst.take_damage().bounding(), rect);
    }

    #[test]
    fn recycled_buffer_is_indistinguishable_from_new() {
        let res = Resolution::new(6, 5);
        let mut used = FrameBuffer::new(res);
        used.fill(Pixel::WHITE);
        used.set_pixel(1, 1, Pixel::grey(3));
        let storage = used.into_storage();
        let ptr = storage.as_ptr();
        let recycled = FrameBuffer::recycled(res, storage);
        assert_eq!(recycled, FrameBuffer::new(res));
        assert_eq!(recycled.as_pixels().as_ptr(), ptr, "allocation reused");
        // A smaller target resolution also reuses the allocation.
        let shrunk = FrameBuffer::recycled(Resolution::new(2, 2), recycled.into_storage());
        assert_eq!(shrunk, FrameBuffer::new(Resolution::new(2, 2)));
    }

    #[test]
    fn draw_ops_maintain_tile_signatures() {
        let res = Resolution::new(128, 128); // 2×2 tiles
        let mut fb = FrameBuffer::new(res);
        assert_eq!(fb.tiles().tile(0, 0).solid, Some(Pixel::BLACK));

        fb.fill(Pixel::grey(40));
        assert_eq!(fb.tiles().tile(1, 1).solid, Some(Pixel::grey(40)));
        assert_eq!(fb.tiles().tile(1, 1).stamp, fb.content_generation());

        // Partial fill of one tile degrades only that tile.
        fb.fill_rect(Rect::new(10, 10, 8, 8), Pixel::WHITE);
        assert_eq!(fb.tiles().tile(0, 0).solid, None);
        assert_eq!(fb.tiles().tile(1, 0).solid, Some(Pixel::grey(40)));

        // A tile-covering fill restores solidity for covered tiles.
        fb.fill_rect(Rect::new(0, 0, 64, 64), Pixel::grey(80));
        assert_eq!(fb.tiles().tile(0, 0).solid, Some(Pixel::grey(80)));

        fb.set_pixel(100, 100, Pixel::WHITE);
        assert_eq!(fb.tiles().tile(1, 1).solid, None);

        fb.scroll_up(3, Pixel::BLACK);
        for ty in 0..2 {
            for tx in 0..2 {
                assert_eq!(fb.tiles().tile(tx, ty).solid, None);
                assert_eq!(fb.tiles().tile(tx, ty).stamp, fb.content_generation());
            }
        }
        // Scrolling the full height is just a fill: provably solid again.
        fb.scroll_up(200, Pixel::grey(7));
        assert_eq!(fb.tiles().tile(0, 1).solid, Some(Pixel::grey(7)));
    }

    #[test]
    fn copies_inherit_tile_signatures() {
        let res = Resolution::new(128, 64); // 2×1 tiles
        let mut src = FrameBuffer::new(res);
        src.fill_rect(Rect::new(0, 0, 64, 64), Pixel::grey(200));
        src.fill_rect(Rect::new(70, 3, 4, 4), Pixel::WHITE);
        assert_eq!(src.tiles().tile(0, 0).solid, Some(Pixel::grey(200)));
        assert_eq!(src.tiles().tile(1, 0).solid, None);

        let mut dst = FrameBuffer::new(res);
        dst.copy_from(&src);
        assert_eq!(dst.tiles().tile(0, 0).solid, Some(Pixel::grey(200)));
        assert_eq!(dst.tiles().tile(1, 0).solid, None);
        assert_eq!(dst.tiles().tile(0, 0).stamp, dst.content_generation());

        // A rect copy covering one tile inherits just that tile; a
        // partial copy degrades to unknown.
        let mut patch = FrameBuffer::new(res);
        patch.copy_rect_from(&src, Rect::new(0, 0, 64, 64));
        assert_eq!(patch.tiles().tile(0, 0).solid, Some(Pixel::grey(200)));
        patch.copy_rect_from(&src, Rect::new(64, 0, 10, 10));
        assert_eq!(patch.tiles().tile(1, 0).solid, None);

        // Format conversion quantizes the inherited solid colour.
        let mut lo = FrameBuffer::with_format(res, PixelFormat::Rgb565);
        let mut bright = FrameBuffer::new(res);
        bright.fill(Pixel::rgb(201, 117, 33));
        lo.copy_from(&bright);
        assert_eq!(
            lo.tiles().tile(0, 0).solid,
            Some(PixelFormat::Rgb565.quantize(Pixel::rgb(201, 117, 33)))
        );
        assert_eq!(lo.tiles().tile(0, 0).solid, Some(lo.pixel(0, 0)));
    }

    #[test]
    fn blends_degrade_tile_signatures() {
        let res = Resolution::new(64, 64);
        let mut overlay = FrameBuffer::new(res);
        overlay.fill(Pixel::rgba(255, 255, 255, 128));
        let mut fb = FrameBuffer::new(res);
        fb.fill(Pixel::grey(10));
        assert!(fb.tiles().tile(0, 0).solid.is_some());
        fb.blend_rect_from(&overlay, res.bounds());
        assert_eq!(fb.tiles().tile(0, 0).solid, None);
        assert_eq!(fb.tiles().tile(0, 0).stamp, fb.content_generation());
    }

    #[test]
    fn solid_tiles_are_truthful() {
        // Whenever a tile claims a solid colour, every pixel in it holds
        // exactly that value — spot-checked over a mixed op sequence.
        let res = Resolution::new(100, 70); // uneven edge tiles
        let mut fb = FrameBuffer::new(res);
        fb.fill(Pixel::grey(33));
        fb.fill_rect(Rect::new(60, 10, 30, 30), Pixel::WHITE);
        fb.set_pixel(5, 5, Pixel::grey(1));
        fb.fill_rect(Rect::new(64, 64, 100, 100), Pixel::grey(9));
        let tiles = fb.tiles();
        let mut solid_seen = 0;
        for ty in 0..tiles.rows() {
            for tx in 0..tiles.cols() {
                if let Some(c) = tiles.tile(tx, ty).solid {
                    solid_seen += 1;
                    let r = tiles.tile_rect(tx, ty);
                    for y in r.y..r.bottom() {
                        for x in r.x..r.right() {
                            assert_eq!(fb.pixel(x, y), c, "tile ({tx},{ty}) at ({x},{y})");
                        }
                    }
                }
            }
        }
        assert!(solid_seen > 0, "expected at least one solid tile");
    }

    #[test]
    fn mean_luminance_of_half_white() {
        let mut fb = FrameBuffer::new(Resolution::new(2, 2));
        fb.fill_rect(Rect::new(0, 0, 2, 1), Pixel::WHITE);
        assert!((fb.mean_luminance() - 0.5).abs() < 1e-9);
    }
}
