//! Double buffering (paper §3.1).
//!
//! The content-rate meter needs the *previous* framebuffer contents to
//! compare against the current ones. Copying the framebuffer into a single
//! spare buffer would serialize the copy with the comparison; the paper
//! instead keeps two spare buffers and ping-pongs between them ("double
//! buffering with asynchronous I/O"), so the snapshot of frame *n* is
//! written while frame *n−1*'s snapshot is still being compared.
//!
//! In this simulator both operations run on one thread, so what the type
//! preserves is the *protocol*: the front snapshot is immutable while a new
//! back snapshot is captured, and a swap promotes back to front in O(1).

use crate::buffer::FrameBuffer;
use crate::geometry::Resolution;

/// A pair of snapshot buffers with O(1) front/back swap.
///
/// # Examples
///
/// ```
/// use ccdem_pixelbuf::buffer::FrameBuffer;
/// use ccdem_pixelbuf::double_buffer::DoubleBuffer;
/// use ccdem_pixelbuf::geometry::Resolution;
/// use ccdem_pixelbuf::pixel::Pixel;
///
/// let res = Resolution::new(4, 4);
/// let mut snaps = DoubleBuffer::new(res);
/// let mut fb = FrameBuffer::new(res);
///
/// snaps.capture(&fb);                 // frame 0 snapshot
/// fb.fill(Pixel::WHITE);              // frame 1 drawn
/// assert_ne!(snaps.front().as_pixels(), fb.as_pixels());
/// snaps.capture(&fb);                 // frame 1 snapshot
/// assert_eq!(snaps.front().as_pixels(), fb.as_pixels());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleBuffer {
    front: FrameBuffer,
    back: FrameBuffer,
    captures: u64,
}

impl DoubleBuffer {
    /// Creates a buffer pair for the given resolution, both initially
    /// black.
    pub fn new(resolution: Resolution) -> DoubleBuffer {
        DoubleBuffer {
            front: FrameBuffer::new(resolution),
            back: FrameBuffer::new(resolution),
            captures: 0,
        }
    }

    /// The most recently captured snapshot.
    pub fn front(&self) -> &FrameBuffer {
        &self.front
    }

    /// The snapshot captured before the front one (one frame older).
    pub fn back(&self) -> &FrameBuffer {
        &self.back
    }

    /// Number of captures performed so far.
    pub fn captures(&self) -> u64 {
        self.captures
    }

    /// Copies `source` into the back buffer, then swaps it to the front.
    ///
    /// After this call, [`front`](Self::front) holds `source`'s contents
    /// and [`back`](Self::back) holds the previous front.
    ///
    /// # Panics
    ///
    /// Panics if `source`'s resolution differs from the pair's.
    pub fn capture(&mut self, source: &FrameBuffer) {
        self.back.copy_from(source);
        std::mem::swap(&mut self.front, &mut self.back);
        self.captures += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Pixel;

    #[test]
    fn capture_promotes_back_to_front() {
        let res = Resolution::new(2, 2);
        let mut db = DoubleBuffer::new(res);
        let mut fb = FrameBuffer::new(res);

        fb.fill(Pixel::grey(1));
        db.capture(&fb);
        fb.fill(Pixel::grey(2));
        db.capture(&fb);

        assert_eq!(db.front().pixel(0, 0), Pixel::grey(2));
        assert_eq!(db.back().pixel(0, 0), Pixel::grey(1));
        assert_eq!(db.captures(), 2);
    }

    #[test]
    fn front_holds_latest_after_every_capture() {
        let res = Resolution::new(2, 2);
        let mut db = DoubleBuffer::new(res);
        let mut fb = FrameBuffer::new(res);
        for v in 1..=5u8 {
            fb.fill(Pixel::grey(v));
            db.capture(&fb);
            assert_eq!(db.front().pixel(1, 1), Pixel::grey(v));
        }
    }

    #[test]
    #[should_panic(expected = "matching resolutions")]
    fn capture_rejects_resolution_mismatch() {
        let mut db = DoubleBuffer::new(Resolution::new(2, 2));
        let fb = FrameBuffer::new(Resolution::new(3, 3));
        db.capture(&fb);
    }
}
