//! PPM image export for debugging framebuffers.
//!
//! Binary PPM (P6) is the simplest image format every viewer opens; a
//! one-call dump of a framebuffer makes "what did the compositor
//! actually draw?" a ten-second question while debugging workloads or
//! metering misses.

use std::io::{self, Write};

use crate::buffer::FrameBuffer;

/// Writes `buffer` as a binary PPM (P6) image.
///
/// Alpha is dropped; pixels are written in row-major order.
///
/// # Errors
///
/// Propagates any I/O error from `out`.
///
/// # Examples
///
/// ```
/// use ccdem_pixelbuf::buffer::FrameBuffer;
/// use ccdem_pixelbuf::geometry::Resolution;
/// use ccdem_pixelbuf::pixel::Pixel;
/// use ccdem_pixelbuf::ppm::write_ppm;
///
/// # fn main() -> std::io::Result<()> {
/// let mut fb = FrameBuffer::new(Resolution::new(2, 1));
/// fb.set_pixel(0, 0, Pixel::rgb(255, 0, 0));
/// let mut out = Vec::new();
/// write_ppm(&fb, &mut out)?;
/// assert!(out.starts_with(b"P6\n2 1\n255\n"));
/// assert_eq!(&out[out.len() - 6..], &[255, 0, 0, 0, 0, 0]);
/// # Ok(())
/// # }
/// ```
pub fn write_ppm<W: Write>(buffer: &FrameBuffer, mut out: W) -> io::Result<()> {
    let res = buffer.resolution();
    write!(out, "P6\n{} {}\n255\n", res.width, res.height)?;
    // Stream row by row to bound the temporary buffer.
    let mut row = Vec::with_capacity(res.width as usize * 3);
    for y in 0..res.height {
        row.clear();
        for x in 0..res.width {
            let p = buffer.pixel(x, y);
            row.extend_from_slice(&[p.red(), p.green(), p.blue()]);
        }
        out.write_all(&row)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Rect, Resolution};
    use crate::pixel::Pixel;

    #[test]
    fn header_and_size_correct() {
        let fb = FrameBuffer::new(Resolution::new(3, 2));
        let mut out = Vec::new();
        write_ppm(&fb, &mut out).unwrap();
        let header = b"P6\n3 2\n255\n";
        assert!(out.starts_with(header));
        assert_eq!(out.len(), header.len() + 3 * 2 * 3);
    }

    #[test]
    fn pixels_in_row_major_rgb() {
        let mut fb = FrameBuffer::new(Resolution::new(2, 2));
        fb.fill_rect(Rect::new(1, 0, 1, 1), Pixel::rgb(10, 20, 30));
        let mut out = Vec::new();
        write_ppm(&fb, &mut out).unwrap();
        let data = &out[out.len() - 12..];
        assert_eq!(&data[0..3], &[0, 0, 0]); // (0,0) black
        assert_eq!(&data[3..6], &[10, 20, 30]); // (1,0)
    }

    #[test]
    fn failing_writer_propagates_error() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("broken pipe"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let fb = FrameBuffer::new(Resolution::new(2, 2));
        assert!(write_ppm(&fb, Broken).is_err());
    }
}
