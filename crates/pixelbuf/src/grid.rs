//! Grid-based framebuffer comparison (paper §3.1).
//!
//! Comparing every pixel of a modern panel is too slow to run per frame
//! (Fig. 6: > 40 ms at 720×1280, against a 16.67 ms frame budget at 60 Hz).
//! The paper instead samples the *centre pixel of each cell* of a coarse
//! grid laid over the screen and treats that pixel as representative of the
//! cell. [`GridSampler`] precomputes those sample positions once, so a
//! per-frame comparison is a tight gather-and-compare over a few thousand
//! pixels.

use crate::buffer::FrameBuffer;
use crate::geometry::Resolution;
use crate::pixel::Pixel;

/// Outcome of one grid comparison: the verdict plus the number of grid
/// points inspected before [`GridSampler::compare`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCompare {
    /// Whether any inspected grid point changed.
    pub differs: bool,
    /// Grid points actually read before the early exit (equals
    /// [`GridSampler::sample_count`] when nothing differed).
    pub points_compared: usize,
}

/// Precomputed sample positions for grid-based comparison.
///
/// # Examples
///
/// ```
/// use ccdem_pixelbuf::buffer::FrameBuffer;
/// use ccdem_pixelbuf::geometry::Resolution;
/// use ccdem_pixelbuf::grid::GridSampler;
/// use ccdem_pixelbuf::pixel::Pixel;
///
/// let res = Resolution::GALAXY_S3;
/// // The paper's 9K-pixel configuration: a 72×128 grid.
/// let sampler = GridSampler::new(res, 72, 128);
/// assert_eq!(sampler.sample_count(), 9216);
///
/// let mut fb = FrameBuffer::new(res);
/// let before = sampler.sample(&fb);
/// fb.fill(Pixel::WHITE);
/// assert!(sampler.differs(&fb, &before));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSampler {
    resolution: Resolution,
    cols: u32,
    rows: u32,
    indices: Vec<usize>,
}

impl GridSampler {
    /// Creates a sampler with a `cols`×`rows` grid over `resolution`,
    /// sampling the centre pixel of each cell.
    ///
    /// # Panics
    ///
    /// Panics if `cols`/`rows` is zero or exceeds the resolution.
    pub fn new(resolution: Resolution, cols: u32, rows: u32) -> GridSampler {
        assert!(cols > 0 && rows > 0, "grid dimensions must be non-zero");
        assert!(
            cols <= resolution.width && rows <= resolution.height,
            "grid {cols}x{rows} exceeds resolution {resolution}"
        );
        let w = resolution.width as usize;
        let mut indices = Vec::with_capacity((cols as usize) * (rows as usize));
        for gy in 0..rows {
            // Centre of the cell, in pixel coordinates.
            let y = ((2 * gy + 1) * resolution.height) / (2 * rows);
            for gx in 0..cols {
                let x = ((2 * gx + 1) * resolution.width) / (2 * cols);
                indices.push((y as usize) * w + x as usize);
            }
        }
        GridSampler {
            resolution,
            cols,
            rows,
            indices,
        }
    }

    /// Creates a sampler that compares every pixel (the grid equals the
    /// resolution). This is the Fig. 6 "921K" configuration.
    pub fn full(resolution: Resolution) -> GridSampler {
        GridSampler::new(resolution, resolution.width, resolution.height)
    }

    /// Creates a sampler whose sample count is at most `budget` pixels,
    /// with the grid shaped to the screen's aspect ratio.
    ///
    /// For the Galaxy S3 (720×1280) the paper's budgets map to:
    /// 2304 → 36×64, 9216 → 72×128, 36864 → 144×256.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn for_pixel_budget(resolution: Resolution, budget: usize) -> GridSampler {
        assert!(budget > 0, "pixel budget must be non-zero");
        if budget >= resolution.pixel_count() {
            return GridSampler::full(resolution);
        }
        let aspect = f64::from(resolution.width) / f64::from(resolution.height);
        let mut cols = ((budget as f64 * aspect).sqrt().floor() as u32)
            .clamp(1, resolution.width);
        let mut rows = ((budget / cols as usize) as u32).clamp(1, resolution.height);
        // Guard rounding: never exceed the budget.
        while (cols as usize) * (rows as usize) > budget {
            if rows > 1 {
                rows -= 1;
            } else {
                cols -= 1;
            }
        }
        GridSampler::new(resolution, cols, rows)
    }

    /// The resolution this sampler was built for.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Grid width in cells.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Grid height in cells.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of pixels compared per frame.
    pub fn sample_count(&self) -> usize {
        self.indices.len()
    }

    /// Gathers the sampled pixels of `buffer` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the buffer resolution does not match the sampler's.
    pub fn sample(&self, buffer: &FrameBuffer) -> Vec<Pixel> {
        let mut out = vec![Pixel::TRANSPARENT; self.indices.len()];
        self.sample_into(buffer, &mut out);
        out
    }

    /// Gathers the sampled pixels of `buffer` into `out`, resizing it to
    /// [`sample_count`](Self::sample_count). Reusing `out` across frames
    /// avoids per-frame allocation (this is the double-buffering "extra
    /// buffer" of §3.1).
    ///
    /// # Panics
    ///
    /// Panics if the buffer resolution does not match the sampler's.
    pub fn sample_into(&self, buffer: &FrameBuffer, out: &mut Vec<Pixel>) {
        assert_eq!(
            buffer.resolution(),
            self.resolution,
            "buffer resolution does not match sampler"
        );
        let pixels = buffer.as_pixels();
        out.resize(self.indices.len(), Pixel::TRANSPARENT);
        for (dst, &i) in out.iter_mut().zip(&self.indices) {
            *dst = pixels[i];
        }
    }

    /// Whether the current buffer content differs from a previously
    /// captured sample at any grid point. Early-exits on the first
    /// difference, so redundant frames pay the full scan and changed
    /// frames usually return almost immediately.
    ///
    /// # Panics
    ///
    /// Panics if resolutions mismatch or `previous` has the wrong length.
    pub fn differs(&self, buffer: &FrameBuffer, previous: &[Pixel]) -> bool {
        self.compare(buffer, previous).differs
    }

    /// Compares the current buffer against a previously captured sample,
    /// reporting both the verdict and how many grid points were actually
    /// inspected before the early exit — the per-frame comparison cost
    /// that grid sampling exists to bound (paper §3.1, Fig. 6).
    ///
    /// A redundant frame inspects every point
    /// ([`sample_count`](Self::sample_count)); a changed frame stops at
    /// the first differing point.
    ///
    /// # Panics
    ///
    /// Panics if resolutions mismatch or `previous` has the wrong length.
    ///
    /// # Examples
    ///
    /// ```
    /// use ccdem_pixelbuf::buffer::FrameBuffer;
    /// use ccdem_pixelbuf::geometry::Resolution;
    /// use ccdem_pixelbuf::grid::GridSampler;
    /// use ccdem_pixelbuf::pixel::Pixel;
    ///
    /// let g = GridSampler::new(Resolution::new(100, 100), 10, 10);
    /// let mut fb = FrameBuffer::new(Resolution::new(100, 100));
    /// let snap = g.sample(&fb);
    ///
    /// let unchanged = g.compare(&fb, &snap);
    /// assert!(!unchanged.differs);
    /// assert_eq!(unchanged.points_compared, g.sample_count());
    ///
    /// fb.fill(Pixel::WHITE);
    /// let changed = g.compare(&fb, &snap);
    /// assert!(changed.differs);
    /// assert_eq!(changed.points_compared, 1); // first point already differs
    /// ```
    pub fn compare(&self, buffer: &FrameBuffer, previous: &[Pixel]) -> GridCompare {
        assert_eq!(
            buffer.resolution(),
            self.resolution,
            "buffer resolution does not match sampler"
        );
        assert_eq!(
            previous.len(),
            self.indices.len(),
            "previous sample has wrong length"
        );
        let pixels = buffer.as_pixels();
        for (n, (&i, &prev)) in self.indices.iter().zip(previous).enumerate() {
            if pixels[i] != prev {
                return GridCompare {
                    differs: true,
                    points_compared: n + 1,
                };
            }
        }
        GridCompare {
            differs: false,
            points_compared: self.indices.len(),
        }
    }

    /// Number of grid points whose pixel differs from the captured sample.
    pub fn changed_points(&self, buffer: &FrameBuffer, previous: &[Pixel]) -> usize {
        assert_eq!(
            buffer.resolution(),
            self.resolution,
            "buffer resolution does not match sampler"
        );
        assert_eq!(
            previous.len(),
            self.indices.len(),
            "previous sample has wrong length"
        );
        let pixels = buffer.as_pixels();
        self.indices
            .iter()
            .zip(previous)
            .filter(|&(&i, &prev)| pixels[i] != prev)
            .count()
    }

    /// The `(x, y)` screen position of each sample point.
    pub fn positions(&self) -> Vec<(u32, u32)> {
        let w = self.resolution.width as usize;
        self.indices
            .iter()
            .map(|&i| ((i % w) as u32, (i / w) as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    #[test]
    fn paper_grid_dimensions() {
        let res = Resolution::GALAXY_S3;
        assert_eq!(GridSampler::new(res, 36, 64).sample_count(), 2304);
        assert_eq!(GridSampler::new(res, 48, 85).sample_count(), 4080);
        assert_eq!(GridSampler::new(res, 72, 128).sample_count(), 9216);
        assert_eq!(GridSampler::new(res, 144, 256).sample_count(), 36864);
        assert_eq!(GridSampler::full(res).sample_count(), 921_600);
    }

    #[test]
    fn budget_sampler_respects_budget_and_aspect() {
        let res = Resolution::GALAXY_S3;
        for budget in [2304usize, 4080, 9216, 36864, 100_000] {
            let g = GridSampler::for_pixel_budget(res, budget);
            assert!(g.sample_count() <= budget, "budget {budget} exceeded");
            assert!(g.sample_count() * 2 > budget, "budget {budget} underused");
        }
        let full = GridSampler::for_pixel_budget(res, usize::MAX);
        assert_eq!(full.sample_count(), res.pixel_count());
    }

    #[test]
    fn budget_9216_matches_paper_grid() {
        let g = GridSampler::for_pixel_budget(Resolution::GALAXY_S3, 9216);
        assert_eq!((g.cols(), g.rows()), (72, 128));
    }

    #[test]
    fn positions_are_cell_centres_in_bounds() {
        let res = Resolution::new(100, 200);
        let g = GridSampler::new(res, 10, 20);
        for (x, y) in g.positions() {
            assert!(res.contains(x, y));
        }
        // First cell centre of a 10-col grid over 100px is pixel 5.
        assert_eq!(g.positions()[0], (5, 5));
    }

    #[test]
    fn identical_buffers_do_not_differ() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 1000);
        let fb = FrameBuffer::new(res);
        let snap = g.sample(&fb);
        assert!(!g.differs(&fb, &snap));
        assert_eq!(g.changed_points(&fb, &snap), 0);
    }

    #[test]
    fn full_screen_change_detected() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 1000);
        let mut fb = FrameBuffer::new(res);
        let snap = g.sample(&fb);
        fb.fill(Pixel::WHITE);
        assert!(g.differs(&fb, &snap));
        assert_eq!(g.changed_points(&fb, &snap), g.sample_count());
    }

    #[test]
    fn tiny_change_between_grid_points_is_missed() {
        // This is the Fig. 6 failure mode for coarse grids: a change
        // smaller than a grid cell that avoids every sample point.
        let res = Resolution::new(100, 100);
        let g = GridSampler::new(res, 2, 2); // samples at (25,25),(75,25),...
        let mut fb = FrameBuffer::new(res);
        let snap = g.sample(&fb);
        fb.fill_rect(Rect::new(0, 0, 3, 3), Pixel::WHITE);
        assert!(!g.differs(&fb, &snap), "coarse grid should miss a 3x3 change");
        // The full sampler never misses.
        let full = GridSampler::full(res);
        let mut fb2 = FrameBuffer::new(res);
        let snap2 = full.sample(&fb2);
        fb2.fill_rect(Rect::new(0, 0, 3, 3), Pixel::WHITE);
        assert!(full.differs(&fb2, &snap2));
    }

    #[test]
    fn sample_into_reuses_allocation() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 500);
        let fb = FrameBuffer::new(res);
        let mut buf = Vec::new();
        g.sample_into(&fb, &mut buf);
        assert_eq!(buf.len(), g.sample_count());
        let ptr = buf.as_ptr();
        g.sample_into(&fb, &mut buf);
        assert_eq!(buf.as_ptr(), ptr, "no reallocation expected");
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn differs_rejects_bad_snapshot() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 500);
        let fb = FrameBuffer::new(res);
        let _ = g.differs(&fb, &[]);
    }

    #[test]
    #[should_panic(expected = "exceeds resolution")]
    fn grid_larger_than_screen_rejected() {
        let _ = GridSampler::new(Resolution::new(10, 10), 11, 10);
    }
}
