//! Grid-based framebuffer comparison (paper §3.1).
//!
//! Comparing every pixel of a modern panel is too slow to run per frame
//! (Fig. 6: > 40 ms at 720×1280, against a 16.67 ms frame budget at 60 Hz).
//! The paper instead samples the *centre pixel of each cell* of a coarse
//! grid laid over the screen and treats that pixel as representative of the
//! cell.
//!
//! [`GridSampler`] stores the sample positions as a **row-run layout**
//! rather than a flat index list: the column centres decompose into a few
//! maximal equal-stride runs (exactly one when the width divides evenly by
//! the column count, as it does for every paper budget on the Galaxy S3),
//! and every sampled row replays the same runs at its own base offset. A
//! per-frame comparison is therefore a sequence of bounds-check-free
//! slice-window sweeps instead of one bounds-checked random gather per
//! point — and *dense* runs (stride 1, i.e. the full-resolution sampler
//! and any budget that samples every column) compare two pixels per `u64`
//! word and refresh the snapshot with a straight `memcpy`.

use crate::buffer::FrameBuffer;
use crate::damage::DamageRegion;
use crate::geometry::Resolution;
use crate::pixel::Pixel;
use crate::tile::{TileMap, TILE_SIZE};

/// Outcome of one grid comparison: the verdict plus how much work it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCompare {
    /// Whether any inspected grid point changed.
    pub differs: bool,
    /// Grid points compared against the snapshot before the early exit
    /// (equals the number of candidate points when nothing differed).
    pub points_compared: usize,
    /// Grid points whose framebuffer pixel was actually read, comparisons
    /// and snapshot refreshes combined. This is the per-frame gather cost:
    /// [`GridSampler::compare`] reads each compared point once, the fused
    /// [`GridSampler::compare_and_capture`] reads every grid point exactly
    /// once, and the damage-restricted variant reads only the points
    /// inside the damage region.
    pub points_read: usize,
}

/// Outcome of a tile-gated comparison
/// ([`GridSampler::compare_and_capture_tiled`]): the grid verdict and
/// accounting plus how far the tile signatures pruned the descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileCompare {
    /// The verdict and accounting. `differs` and `points_compared` are
    /// bit-identical to what
    /// [`GridSampler::compare_and_capture_damaged`] reports for the same
    /// inputs; `points_read` counts only the framebuffer pixels actually
    /// read, which the clean- and solid-tile paths avoid entirely.
    pub grid: GridCompare,
    /// Tiles whose signature was examined (per damage rect and tile-row
    /// group, so a tile revisited for another rect counts again).
    pub tiles_checked: usize,
    /// Checked tiles whose stamp forced a descent (written since the
    /// last observation).
    pub tiles_descended: usize,
}

/// How a tile's signature resolves for one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TileKind {
    /// Stamp at most the last observed content generation: the tile's
    /// pixels are unchanged since the snapshot was captured.
    Clean,
    /// Written since, but provably this exact colour everywhere.
    Solid(Pixel),
    /// Written since, content unknown: descend to pixel compares.
    Unknown,
}

fn tile_kind(tiles: &TileMap, tx: u32, ty: u32, last_content_generation: u64) -> TileKind {
    let t = tiles.tile(tx, ty);
    if t.stamp <= last_content_generation {
        TileKind::Clean
    } else if let Some(c) = t.solid {
        TileKind::Solid(c)
    } else {
        TileKind::Unknown
    }
}

/// A maximal run of equally-spaced sample columns: `count` samples
/// starting at screen column `first_x`, `stride` pixels apart.
///
/// The column centres `((2·gx + 1)·W) / (2·C)` are *not* globally
/// equispaced when `W % C != 0` (consecutive strides alternate between
/// ⌊W/C⌋ and ⌈W/C⌉), so a row decomposes into a handful of runs rather
/// than always exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ColRun {
    first_x: u32,
    stride: u32,
    count: u32,
}

/// One column run projected onto a concrete sampled row: a window into
/// the framebuffer's pixel slice plus the matching range of the
/// row-major snapshot.
#[derive(Debug, Clone, Copy)]
struct RunSpan {
    pixel_start: usize,
    snap_start: usize,
    stride: usize,
    count: usize,
}

impl RunSpan {
    /// The window of `pixels` spanned by this run, first sample to last
    /// sample inclusive. Dense runs (stride 1) hold exactly the sampled
    /// pixels; strided runs hold the sampled pixels at multiples of
    /// `stride` from the window start.
    fn window<'a>(&self, pixels: &'a [Pixel]) -> &'a [Pixel] {
        let end = self.pixel_start + (self.count - 1) * self.stride + 1;
        // ccdem-lint: allow(panic) — in-bounds by construction: every
        // run's last sample is a cell centre inside the checked buffer.
        &pixels[self.pixel_start..end]
    }

    /// This run's slots of the row-major snapshot.
    fn snap<'a>(&self, snapshot: &'a [Pixel]) -> &'a [Pixel] {
        // ccdem-lint: allow(panic) — snapshot length is checked against
        // sample_count() before any span is formed.
        &snapshot[self.snap_start..self.snap_start + self.count]
    }

    /// Mutable variant of [`snap`](Self::snap).
    fn snap_mut<'a>(&self, snapshot: &'a mut [Pixel]) -> &'a mut [Pixel] {
        // ccdem-lint: allow(panic) — see `snap`.
        &mut snapshot[self.snap_start..self.snap_start + self.count]
    }
}

/// Decomposes strictly increasing column centres into maximal
/// equal-stride runs, greedily left to right.
fn col_runs_of(col_xs: &[u32]) -> Vec<ColRun> {
    let mut runs: Vec<ColRun> = Vec::new();
    for &x in col_xs {
        match runs.last_mut() {
            // A lone trailing column adopts the next column's spacing.
            Some(run) if run.count == 1 => {
                run.stride = x - run.first_x;
                run.count = 2;
            }
            Some(run) if x == run.first_x + run.stride * run.count => {
                run.count += 1;
            }
            _ => runs.push(ColRun {
                first_x: x,
                stride: 1,
                count: 1,
            }),
        }
    }
    runs
}

/// Packs two pixels into one comparison word: dense runs compare two
/// pixels per `u64` instead of one at a time. Only equality is ever
/// asked of the word, so byte order inside it is irrelevant.
fn word(pair: &[Pixel]) -> u64 {
    pair.iter()
        .fold(0u64, |w, p| (w << 32) | u64::from(p.to_bits()))
}

/// Index of the first differing sample between a dense (stride-1) window
/// and its snapshot slots. Compares two pixels per `u64` word via
/// `chunks_exact(2)`, handles the odd-length tail scalar, and locates
/// the exact first-differing pixel inside a mismatching word so early
/// exit accounting is bit-identical to a scalar sweep.
fn first_diff_dense(window: &[Pixel], prev: &[Pixel]) -> Option<usize> {
    debug_assert_eq!(window.len(), prev.len());
    if window == prev {
        // Bulk equality is the common (redundant-frame) case and
        // vectorizes to a plain memory compare.
        return None;
    }
    let mut cur = window.chunks_exact(2);
    let mut old = prev.chunks_exact(2);
    let mut n = 0usize;
    for (c, p) in cur.by_ref().zip(old.by_ref()) {
        if word(c) != word(p) {
            // If the words differ but their first pixels agree, the
            // difference sits at the second pixel of the word.
            return Some(n + usize::from(c.first() == p.first()));
        }
        n += 2;
    }
    cur.remainder()
        .iter()
        .zip(old.remainder())
        .position(|(a, b)| a != b)
        .map(|k| n + k)
}

/// Index of the first differing sample in a run window, dense or strided.
fn first_diff(window: &[Pixel], stride: usize, prev: &[Pixel]) -> Option<usize> {
    if stride == 1 {
        first_diff_dense(window, prev)
    } else {
        window
            .iter()
            .step_by(stride)
            .zip(prev)
            .position(|(a, b)| a != b)
    }
}

/// Copies a run's sampled pixels into `dst`: a `memcpy` for dense runs,
/// a bounds-check-free strided sweep otherwise.
fn capture_run(window: &[Pixel], stride: usize, dst: &mut [Pixel]) {
    if stride == 1 {
        dst.copy_from_slice(window);
    } else {
        for (slot, px) in dst.iter_mut().zip(window.iter().step_by(stride)) {
            *slot = *px;
        }
    }
}

/// Precomputed sample positions for grid-based comparison.
///
/// # Examples
///
/// ```
/// use ccdem_pixelbuf::buffer::FrameBuffer;
/// use ccdem_pixelbuf::geometry::Resolution;
/// use ccdem_pixelbuf::grid::GridSampler;
/// use ccdem_pixelbuf::pixel::Pixel;
///
/// let res = Resolution::GALAXY_S3;
/// // The paper's 9K-pixel configuration: a 72×128 grid.
/// let sampler = GridSampler::new(res, 72, 128);
/// assert_eq!(sampler.sample_count(), 9216);
///
/// let mut fb = FrameBuffer::new(res);
/// let before = sampler.sample(&fb);
/// fb.fill(Pixel::WHITE);
/// assert!(sampler.differs(&fb, &before));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSampler {
    resolution: Resolution,
    cols: u32,
    rows: u32,
    /// Column sample positions decomposed into equal-stride runs; every
    /// sampled row replays the same runs at its own base offset.
    col_runs: Vec<ColRun>,
    /// Sample x-coordinate of each grid column, strictly increasing.
    col_xs: Vec<u32>,
    /// Sample y-coordinate of each grid row, strictly increasing.
    row_ys: Vec<u32>,
}

impl GridSampler {
    /// Creates a sampler with a `cols`×`rows` grid over `resolution`,
    /// sampling the centre pixel of each cell.
    ///
    /// # Panics
    ///
    /// Panics if `cols`/`rows` is zero or exceeds the resolution.
    pub fn new(resolution: Resolution, cols: u32, rows: u32) -> GridSampler {
        assert!(cols > 0 && rows > 0, "grid dimensions must be non-zero");
        assert!(
            cols <= resolution.width && rows <= resolution.height,
            "grid {cols}x{rows} exceeds resolution {resolution}"
        );
        // Centre of each cell, in pixel coordinates. Both axes are
        // strictly increasing (the cell pitch is at least one pixel), so
        // damage rectangles map to grid index ranges by binary search.
        let col_xs: Vec<u32> = (0..cols)
            .map(|gx| ((2 * gx + 1) * resolution.width) / (2 * cols))
            .collect();
        let row_ys: Vec<u32> = (0..rows)
            .map(|gy| ((2 * gy + 1) * resolution.height) / (2 * rows))
            .collect();
        let col_runs = col_runs_of(&col_xs);
        GridSampler {
            resolution,
            cols,
            rows,
            col_runs,
            col_xs,
            row_ys,
        }
    }

    /// Creates a sampler that compares every pixel (the grid equals the
    /// resolution). This is the Fig. 6 "921K" configuration.
    pub fn full(resolution: Resolution) -> GridSampler {
        GridSampler::new(resolution, resolution.width, resolution.height)
    }

    /// Creates a sampler whose sample count is at most `budget` pixels,
    /// with the grid shaped to the screen's aspect ratio.
    ///
    /// For the Galaxy S3 (720×1280) the paper's budgets map to:
    /// 2304 → 36×64, 9216 → 72×128, 36864 → 144×256.
    ///
    /// Degenerate inputs are handled exactly rather than panicking: a
    /// zero budget yields the minimal 1×1 sampler (one centre point), a
    /// budget of at least the pixel count yields the full-resolution
    /// sampler, and single-row / single-column screens get `budget`
    /// samples along their one axis.
    pub fn for_pixel_budget(resolution: Resolution, budget: usize) -> GridSampler {
        if budget >= resolution.pixel_count() {
            return GridSampler::full(resolution);
        }
        // Even a zero budget needs a usable sampler: one centre point.
        let budget = budget.max(1);
        let aspect = f64::from(resolution.width) / f64::from(resolution.height);
        // Capping cols at the budget makes extreme aspect ratios exact
        // (a 1-pixel-tall screen gets `budget`×1) and guarantees the
        // rounding guard below can never underflow cols past 1.
        let mut cols = ((budget as f64 * aspect).sqrt().floor() as u32)
            .clamp(1, resolution.width)
            .min(budget.min(resolution.width as usize) as u32);
        let mut rows = ((budget / cols as usize) as u32).clamp(1, resolution.height);
        // Guard rounding: never exceed the budget.
        while (cols as usize) * (rows as usize) > budget {
            if rows > 1 {
                rows -= 1;
            } else {
                cols -= 1;
            }
        }
        GridSampler::new(resolution, cols, rows)
    }

    /// The resolution this sampler was built for.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Grid width in cells.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Grid height in cells.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of pixels compared per frame.
    pub fn sample_count(&self) -> usize {
        (self.cols as usize) * (self.rows as usize)
    }

    /// Every run of every sampled row, in snapshot (row-major) order.
    fn run_spans(&self) -> impl Iterator<Item = RunSpan> + '_ {
        let w = self.resolution.width as usize;
        let cols = self.cols as usize;
        let runs = &self.col_runs;
        self.row_ys.iter().enumerate().flat_map(move |(gy, &y)| {
            let row_base = (y as usize) * w;
            let mut snap_off = gy * cols;
            runs.iter().map(move |run| {
                let span = RunSpan {
                    pixel_start: row_base + run.first_x as usize,
                    snap_start: snap_off,
                    stride: run.stride as usize,
                    count: run.count as usize,
                };
                snap_off += run.count as usize;
                span
            })
        })
    }

    /// Gathers the sampled pixels of `buffer` into a new vector.
    ///
    /// **Allocation contract:** allocates a fresh vector on every call.
    /// That is fine for tests and one-off setup, but never for per-frame
    /// paths — hot callers hold a reusable scratch vector and call
    /// [`sample_into`](Self::sample_into) instead.
    ///
    /// # Panics
    ///
    /// Panics if the buffer resolution does not match the sampler's.
    pub fn sample(&self, buffer: &FrameBuffer) -> Vec<Pixel> {
        let mut out = vec![Pixel::TRANSPARENT; self.sample_count()];
        self.sample_into(buffer, &mut out);
        out
    }

    /// Gathers the sampled pixels of `buffer` into `out`, resizing it to
    /// [`sample_count`](Self::sample_count). Every slot of `out` is
    /// overwritten, so recycled storage needs no clearing first.
    ///
    /// **Allocation contract:** allocation-free once `out` has reached
    /// capacity — reusing `out` across frames is the double-buffering
    /// "extra buffer" of §3.1, and the only supported way to sample on a
    /// hot path.
    ///
    /// # Panics
    ///
    /// Panics if the buffer resolution does not match the sampler's.
    pub fn sample_into(&self, buffer: &FrameBuffer, out: &mut Vec<Pixel>) {
        self.check_buffer(buffer);
        let pixels = buffer.as_pixels();
        out.resize(self.sample_count(), Pixel::TRANSPARENT);
        for span in self.run_spans() {
            capture_run(span.window(pixels), span.stride, span.snap_mut(out));
        }
    }

    /// Whether the current buffer content differs from a previously
    /// captured sample at any grid point. Early-exits on the first
    /// difference, so redundant frames pay the full scan and changed
    /// frames usually return almost immediately.
    ///
    /// # Panics
    ///
    /// Panics if resolutions mismatch or `previous` has the wrong length.
    pub fn differs(&self, buffer: &FrameBuffer, previous: &[Pixel]) -> bool {
        self.compare(buffer, previous).differs
    }

    /// Compares the current buffer against a previously captured sample,
    /// reporting both the verdict and how many grid points were actually
    /// inspected before the early exit — the per-frame comparison cost
    /// that grid sampling exists to bound (paper §3.1, Fig. 6).
    ///
    /// A redundant frame inspects every point
    /// ([`sample_count`](Self::sample_count)); a changed frame stops at
    /// the first differing point. Dense runs compare two pixels per
    /// `u64` word but still report the exact first-differing point, so
    /// the accounting is bit-identical to a scalar sweep.
    ///
    /// # Panics
    ///
    /// Panics if resolutions mismatch or `previous` has the wrong length.
    ///
    /// # Examples
    ///
    /// ```
    /// use ccdem_pixelbuf::buffer::FrameBuffer;
    /// use ccdem_pixelbuf::geometry::Resolution;
    /// use ccdem_pixelbuf::grid::GridSampler;
    /// use ccdem_pixelbuf::pixel::Pixel;
    ///
    /// let g = GridSampler::new(Resolution::new(100, 100), 10, 10);
    /// let mut fb = FrameBuffer::new(Resolution::new(100, 100));
    /// let snap = g.sample(&fb);
    ///
    /// let unchanged = g.compare(&fb, &snap);
    /// assert!(!unchanged.differs);
    /// assert_eq!(unchanged.points_compared, g.sample_count());
    ///
    /// fb.fill(Pixel::WHITE);
    /// let changed = g.compare(&fb, &snap);
    /// assert!(changed.differs);
    /// assert_eq!(changed.points_compared, 1); // first point already differs
    /// ```
    pub fn compare(&self, buffer: &FrameBuffer, previous: &[Pixel]) -> GridCompare {
        self.check_snapshot(buffer, previous);
        let pixels = buffer.as_pixels();
        for span in self.run_spans() {
            if let Some(k) = first_diff(span.window(pixels), span.stride, span.snap(previous)) {
                let n = span.snap_start + k + 1;
                return GridCompare {
                    differs: true,
                    points_compared: n,
                    points_read: n,
                };
            }
        }
        GridCompare {
            differs: false,
            points_compared: self.sample_count(),
            points_read: self.sample_count(),
        }
    }

    /// Compares the current buffer against `snapshot` and refreshes the
    /// snapshot to the current content, in a single gather: each grid
    /// point is read exactly once, where a separate
    /// [`compare`](Self::compare) + [`sample_into`](Self::sample_into)
    /// pair reads redundant frames twice. The verdict is identical to
    /// `compare` and the refreshed snapshot is identical to
    /// `sample_into`'s output.
    ///
    /// Comparisons stop at the first difference (`points_compared`
    /// early-exits like `compare`), but every point is still read to keep
    /// the snapshot current, so `points_read` always equals
    /// [`sample_count`](Self::sample_count). Runs that compared equal are
    /// not rewritten (the snapshot already holds exactly those values);
    /// dense runs past the first difference refresh via `memcpy`.
    ///
    /// # Panics
    ///
    /// Panics if resolutions mismatch or `snapshot` has the wrong length
    /// (prime it first with [`sample_into`](Self::sample_into)).
    pub fn compare_and_capture(
        &self,
        buffer: &FrameBuffer,
        snapshot: &mut [Pixel],
    ) -> GridCompare {
        self.check_snapshot(buffer, snapshot);
        let pixels = buffer.as_pixels();
        let mut differs = false;
        let mut points_compared = 0;
        for span in self.run_spans() {
            let window = span.window(pixels);
            if differs {
                capture_run(window, span.stride, span.snap_mut(snapshot));
            } else {
                match first_diff(window, span.stride, span.snap(snapshot)) {
                    Some(k) => {
                        differs = true;
                        points_compared += k + 1;
                        capture_run(window, span.stride, span.snap_mut(snapshot));
                    }
                    // No difference in this run ⇒ its snapshot slots
                    // already hold exactly the sampled values.
                    None => points_compared += span.count,
                }
            }
        }
        GridCompare {
            differs,
            points_compared,
            points_read: self.sample_count(),
        }
    }

    /// Damage-restricted [`compare_and_capture`](Self::compare_and_capture):
    /// inspects and refreshes only the grid points whose sample position
    /// lies inside `damage`, reading nothing else.
    ///
    /// **Soundness contract:** `damage` must cover every pixel of `buffer`
    /// written since `snapshot` was last captured (the guarantee
    /// [`FrameBuffer::take_damage`] provides). Points outside the damage
    /// are then unchanged, so skipping them cannot alter the verdict and
    /// the snapshot remains current everywhere. Per damage rectangle the
    /// intersecting grid rows/columns are found by binary search, so the
    /// cost is O(points inside the damage), not O(grid). When the damaged
    /// columns are consecutive pixels (always true for the full-resolution
    /// sampler), each damaged row compares as one dense window — two
    /// pixels per word, `memcpy` refresh.
    ///
    /// # Panics
    ///
    /// Panics if resolutions mismatch or `snapshot` has the wrong length.
    pub fn compare_and_capture_damaged(
        &self,
        buffer: &FrameBuffer,
        damage: &DamageRegion,
        snapshot: &mut [Pixel],
    ) -> GridCompare {
        self.check_snapshot(buffer, snapshot);
        let pixels = buffer.as_pixels();
        let w = self.resolution.width as usize;
        let cols = self.cols as usize;
        let mut differs = false;
        let mut points_compared = 0;
        let mut points_read = 0;
        // Damage rects are disjoint and both coordinate axes are strictly
        // increasing, so each grid point is visited at most once.
        for rect in damage.rects() {
            let (gx0, gx1) = Self::axis_range(&self.col_xs, rect.x, rect.right());
            let (gy0, gy1) = Self::axis_range(&self.row_ys, rect.y, rect.bottom());
            let Some(xs) = self.col_xs.get(gx0..gx1) else {
                continue;
            };
            let (Some(&first_x), Some(&last_x)) = (xs.first(), xs.last()) else {
                continue; // no sampled column inside this rect
            };
            // Consecutive damaged columns form a dense window per row.
            let dense = (last_x - first_x) as usize == xs.len() - 1;
            for (gy, &y) in self.row_ys.iter().enumerate().take(gy1).skip(gy0) {
                let row_start = (y as usize) * w + first_x as usize;
                let row_end = (y as usize) * w + last_x as usize;
                // ccdem-lint: allow(panic) — in-bounds: cell centres lie
                // inside the checked buffer.
                let window = &pixels[row_start..=row_end];
                let snap_start = gy * cols + gx0;
                // ccdem-lint: allow(panic) — snapshot length is checked
                // against sample_count() and gx1 ≤ cols.
                let snap = &mut snapshot[snap_start..snap_start + xs.len()];
                points_read += xs.len();
                if dense {
                    if differs {
                        snap.copy_from_slice(window);
                    } else {
                        match first_diff_dense(window, snap) {
                            Some(k) => {
                                differs = true;
                                points_compared += k + 1;
                                snap.copy_from_slice(window);
                            }
                            None => points_compared += xs.len(),
                        }
                    }
                } else {
                    // Strided damaged columns: scalar sweep over the row
                    // window at the columns' offsets from `first_x`.
                    if differs {
                        for (&x, slot) in xs.iter().zip(snap.iter_mut()) {
                            // ccdem-lint: allow(panic) — x ∈ [first_x,
                            // last_x] by construction of the axis range.
                            *slot = window[(x - first_x) as usize];
                        }
                    } else {
                        let hit = xs.iter().zip(snap.iter()).position(|(&x, s)| {
                            // ccdem-lint: allow(panic) — same bound as
                            // the capture sweep above.
                            window[(x - first_x) as usize] != *s
                        });
                        match hit {
                            Some(k) => {
                                differs = true;
                                points_compared += k + 1;
                                for (&x, slot) in xs.iter().zip(snap.iter_mut()) {
                                    // ccdem-lint: allow(panic) — see above.
                                    *slot = window[(x - first_x) as usize];
                                }
                            }
                            None => points_compared += xs.len(),
                        }
                    }
                }
            }
        }
        GridCompare {
            differs,
            points_compared,
            points_read,
        }
    }

    /// Tile-gated [`compare_and_capture_damaged`][ccd]: consults the
    /// buffer's per-tile content signatures before touching pixels, so
    /// tiles unwritten since the last observation are skipped outright
    /// and provably-solid tiles are compared against their constant
    /// colour with **zero framebuffer reads** (the snapshot refresh is a
    /// `fill`, not a gather). Only tiles with unknown content descend to
    /// the PR 5 row-window pixel path. Both pruning mechanisms compose:
    /// the walk covers the intersection of the damage region with the
    /// dirty tiles.
    ///
    /// Signatures gate *descent only*, never equality: `differs`,
    /// `points_compared` (including the early-exit point), and the
    /// refreshed snapshot bytes are bit-identical to
    /// [`compare_and_capture_damaged`][ccd] on the same inputs. A stale
    /// or overly pessimistic signature can only cost an extra descent.
    /// Internally the per-rect walk is segment-major (each tile-row
    /// group classifies its tile columns once), so the row-major
    /// early-exit point is recovered as the lexicographically smallest
    /// `(row, column)` difference across segments — comparisons have no
    /// side effects, which makes the reordering observationally
    /// invisible.
    ///
    /// **Soundness contract:** in addition to the damage contract of
    /// [`compare_and_capture_damaged`][ccd], `snapshot` must be current
    /// as of `last_content_generation` — every grid point equal to the
    /// buffer's pixel as it stood at that content generation. The meter
    /// maintains exactly this by capturing on every observation; tiles
    /// stamped at or before that generation are then both unchanged and
    /// already correctly snapshotted.
    ///
    /// [ccd]: Self::compare_and_capture_damaged
    ///
    /// # Panics
    ///
    /// Panics if resolutions mismatch or `snapshot` has the wrong length.
    pub fn compare_and_capture_tiled(
        &self,
        buffer: &FrameBuffer,
        damage: &DamageRegion,
        last_content_generation: u64,
        snapshot: &mut [Pixel],
    ) -> TileCompare {
        self.check_snapshot(buffer, snapshot);
        let pixels = buffer.as_pixels();
        let tiles = buffer.tiles();
        let w = self.resolution.width as usize;
        let cols = self.cols as usize;
        let mut differs = false;
        let mut points_compared = 0;
        let mut points_read = 0;
        let mut tiles_checked = 0;
        let mut tiles_descended = 0;
        for rect in damage.rects() {
            let (gx0, gx1) = Self::axis_range(&self.col_xs, rect.x, rect.right());
            let (gy0, gy1) = Self::axis_range(&self.row_ys, rect.y, rect.bottom());
            let Some(xs) = self.col_xs.get(gx0..gx1) else {
                continue;
            };
            if xs.is_empty() || gy0 >= gy1 {
                continue; // no sampled point inside this rect
            }
            let n_cols = xs.len();
            // The row-major first differing point of this rect as
            // (row offset within [gy0, gy1), column offset within xs) —
            // the lexicographic minimum over all segment candidates,
            // from which the early-exit accounting is reconstructed.
            let mut first: Option<(usize, usize)> = None;
            // Group consecutive grid rows sharing a tile row, so each
            // tile column is classified once per group, not per row.
            let mut g = gy0;
            while g < gy1 {
                // ccdem-lint: allow(panic) — g < gy1 ≤ row_ys.len() by
                // construction of the axis range.
                let ty = self.row_ys[g] / TILE_SIZE;
                let mut g_end = g + 1;
                // ccdem-lint: allow(panic) — same bound as above.
                while g_end < gy1 && self.row_ys[g_end] / TILE_SIZE == ty {
                    g_end += 1;
                }
                // Walk the sampled columns, coalescing runs of same-kind
                // tiles into segments handled in one sweep each.
                let mut s0 = 0usize;
                while s0 < n_cols {
                    // ccdem-lint: allow(panic) — s0 < n_cols = xs.len().
                    let mut last_tx = xs[s0] / TILE_SIZE;
                    let kind = tile_kind(tiles, last_tx, ty, last_content_generation);
                    let mut seg_tiles = 1usize;
                    let mut s1 = s0 + 1;
                    while s1 < n_cols {
                        // ccdem-lint: allow(panic) — s1 < n_cols.
                        let tx = xs[s1] / TILE_SIZE;
                        if tx != last_tx {
                            if tile_kind(tiles, tx, ty, last_content_generation) != kind {
                                break;
                            }
                            seg_tiles += 1;
                            last_tx = tx;
                        }
                        s1 += 1;
                    }
                    tiles_checked += seg_tiles;
                    match kind {
                        TileKind::Clean => {
                            // Unwritten since the last observation: the
                            // pixels are unchanged and the snapshot is
                            // still current here, so the (equal) outcome
                            // is known without reading or writing.
                        }
                        TileKind::Solid(c) => {
                            tiles_descended += seg_tiles;
                            // Every framebuffer pixel under this segment
                            // provably holds `c`: compare the snapshot
                            // slots against the constant and refresh
                            // with a fill — zero framebuffer reads.
                            for gy in g..g_end {
                                let snap_start = gy * cols + gx0 + s0;
                                // ccdem-lint: allow(panic) — snapshot
                                // length is checked against
                                // sample_count() and gx0 + s1 ≤ cols.
                                let snap = &mut snapshot[snap_start..snap_start + (s1 - s0)];
                                if !differs && first.is_none_or(|(r, _)| gy - gy0 < r) {
                                    if let Some(k) = snap.iter().position(|&s| s != c) {
                                        first = Some((gy - gy0, s0 + k));
                                        snap.fill(c);
                                    }
                                    // Equal: the slots already hold `c`.
                                } else {
                                    snap.fill(c);
                                }
                            }
                        }
                        TileKind::Unknown => {
                            tiles_descended += seg_tiles;
                            // Unknown content: descend to the row-window
                            // pixel path over this segment's columns.
                            // ccdem-lint: allow(panic) — s0 < s1 ≤
                            // n_cols = xs.len() (segment bounds).
                            let seg_xs = &xs[s0..s1];
                            let (Some(&first_x), Some(&last_x)) =
                                (seg_xs.first(), seg_xs.last())
                            else {
                                unreachable!("segments are non-empty");
                            };
                            let dense = (last_x - first_x) as usize == seg_xs.len() - 1;
                            for (gy, &y) in
                                self.row_ys.iter().enumerate().take(g_end).skip(g)
                            {
                                let row_start = (y as usize) * w + first_x as usize;
                                let row_end = (y as usize) * w + last_x as usize;
                                // ccdem-lint: allow(panic) — in-bounds:
                                // cell centres lie inside the buffer.
                                let window = &pixels[row_start..=row_end];
                                let snap_start = gy * cols + gx0 + s0;
                                // ccdem-lint: allow(panic) — see the
                                // solid-segment bound above.
                                let snap = &mut snapshot[snap_start..snap_start + seg_xs.len()];
                                points_read += seg_xs.len();
                                let live =
                                    !differs && first.is_none_or(|(r, _)| gy - gy0 < r);
                                if dense {
                                    if live {
                                        if let Some(k) = first_diff_dense(window, snap) {
                                            first = Some((gy - gy0, s0 + k));
                                            snap.copy_from_slice(window);
                                        }
                                        // Equal runs are not rewritten.
                                    } else {
                                        snap.copy_from_slice(window);
                                    }
                                } else if live {
                                    let hit = seg_xs.iter().zip(snap.iter()).position(
                                        |(&x, s)| {
                                            // ccdem-lint: allow(panic) — x ∈
                                            // [first_x, last_x] by
                                            // construction.
                                            window[(x - first_x) as usize] != *s
                                        },
                                    );
                                    if let Some(k) = hit {
                                        first = Some((gy - gy0, s0 + k));
                                        for (&x, slot) in seg_xs.iter().zip(snap.iter_mut())
                                        {
                                            // ccdem-lint: allow(panic) — see
                                            // above.
                                            *slot = window[(x - first_x) as usize];
                                        }
                                    }
                                } else {
                                    for (&x, slot) in seg_xs.iter().zip(snap.iter_mut()) {
                                        // ccdem-lint: allow(panic) — see
                                        // above.
                                        *slot = window[(x - first_x) as usize];
                                    }
                                }
                            }
                        }
                    }
                    s0 = s1;
                }
                g = g_end;
            }
            // Reconstruct the row-major early-exit accounting from the
            // lexicographically first difference, exactly as the
            // row-major walk would have charged it.
            if !differs {
                match first {
                    Some((r, k)) => {
                        differs = true;
                        points_compared += r * n_cols + k + 1;
                    }
                    None => points_compared += (gy1 - gy0) * n_cols,
                }
            }
        }
        TileCompare {
            grid: GridCompare {
                differs,
                points_compared,
                points_read,
            },
            tiles_checked,
            tiles_descended,
        }
    }

    /// Number of grid points whose pixel differs from the captured sample.
    pub fn changed_points(&self, buffer: &FrameBuffer, previous: &[Pixel]) -> usize {
        self.check_snapshot(buffer, previous);
        let pixels = buffer.as_pixels();
        self.run_spans()
            .map(|span| {
                span.window(pixels)
                    .iter()
                    .step_by(span.stride)
                    .zip(span.snap(previous))
                    .filter(|(a, b)| a != b)
                    .count()
            })
            .sum()
    }

    /// The `(x, y)` screen position of each sample point, in grid order,
    /// without allocating.
    pub fn positions(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let cols = &self.col_xs;
        self.row_ys
            .iter()
            .flat_map(move |&y| cols.iter().map(move |&x| (x, y)))
    }

    /// The half-open range of grid indices whose sample coordinate lies in
    /// `[lo, hi)`, on one strictly increasing axis.
    fn axis_range(coords: &[u32], lo: u32, hi: u32) -> (usize, usize) {
        let start = coords.partition_point(|&c| c < lo);
        let end = coords.partition_point(|&c| c < hi);
        (start, end)
    }

    fn check_buffer(&self, buffer: &FrameBuffer) {
        assert_eq!(
            buffer.resolution(),
            self.resolution,
            "buffer resolution does not match sampler"
        );
    }

    fn check_snapshot(&self, buffer: &FrameBuffer, snapshot: &[Pixel]) {
        self.check_buffer(buffer);
        assert_eq!(
            snapshot.len(),
            self.sample_count(),
            "previous sample has wrong length"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    #[test]
    fn paper_grid_dimensions() {
        let res = Resolution::GALAXY_S3;
        assert_eq!(GridSampler::new(res, 36, 64).sample_count(), 2304);
        assert_eq!(GridSampler::new(res, 48, 85).sample_count(), 4080);
        assert_eq!(GridSampler::new(res, 72, 128).sample_count(), 9216);
        assert_eq!(GridSampler::new(res, 144, 256).sample_count(), 36864);
        assert_eq!(GridSampler::full(res).sample_count(), 921_600);
    }

    #[test]
    fn budget_sampler_respects_budget_and_aspect() {
        let res = Resolution::GALAXY_S3;
        for budget in [2304usize, 4080, 9216, 36864, 100_000] {
            let g = GridSampler::for_pixel_budget(res, budget);
            assert!(g.sample_count() <= budget, "budget {budget} exceeded");
            assert!(g.sample_count() * 2 > budget, "budget {budget} underused");
        }
        let full = GridSampler::for_pixel_budget(res, usize::MAX);
        assert_eq!(full.sample_count(), res.pixel_count());
    }

    #[test]
    fn budget_9216_matches_paper_grid() {
        let g = GridSampler::for_pixel_budget(Resolution::GALAXY_S3, 9216);
        assert_eq!((g.cols(), g.rows()), (72, 128));
    }

    #[test]
    fn column_runs_collapse_for_divisor_grids() {
        // 720 divides evenly by every paper column count, so each row is
        // exactly one equal-stride run.
        let g = GridSampler::new(Resolution::GALAXY_S3, 36, 64);
        assert_eq!(
            g.col_runs,
            vec![ColRun {
                first_x: 10,
                stride: 20,
                count: 36
            }]
        );
        // The full sampler is one dense run per row.
        let full = GridSampler::full(Resolution::GALAXY_S3);
        assert_eq!(
            full.col_runs,
            vec![ColRun {
                first_x: 0,
                stride: 1,
                count: 720
            }]
        );
    }

    #[test]
    fn column_runs_cover_non_divisor_grids_exactly() {
        // 47 columns over 100 px: strides alternate between 2 and 3, so
        // the decomposition must split — but replaying the runs must
        // reproduce the exact centre list.
        let g = GridSampler::new(Resolution::new(100, 10), 47, 5);
        assert!(g.col_runs.len() > 1, "non-uniform strides must split");
        let replayed: Vec<u32> = g
            .col_runs
            .iter()
            .flat_map(|r| (0..r.count).map(move |k| r.first_x + k * r.stride))
            .collect();
        assert_eq!(replayed, g.col_xs);
        assert_eq!(g.positions().count(), g.sample_count());
    }

    #[test]
    fn dense_compare_locates_every_first_diff_exactly() {
        // Odd width: every full-sampler row window has an odd tail after
        // the two-pixel words, and diffs land on both word halves.
        let res = Resolution::new(7, 3);
        let g = GridSampler::full(res);
        let fb = FrameBuffer::new(res);
        let snap = g.sample(&fb);
        for p in 0..g.sample_count() {
            let (x, y) = ((p % 7) as u32, (p / 7) as u32);
            let mut fb2 = fb.clone();
            fb2.set_pixel(x, y, Pixel::WHITE);
            let r = g.compare(&fb2, &snap);
            assert!(r.differs);
            assert_eq!(r.points_compared, p + 1, "first diff at point {p}");
            assert_eq!(g.changed_points(&fb2, &snap), 1);
            let mut captured = snap.clone();
            let rc = g.compare_and_capture(&fb2, &mut captured);
            assert_eq!(rc.points_compared, p + 1, "fused diff at point {p}");
            assert_eq!(rc.points_read, g.sample_count());
            assert_eq!(captured, g.sample(&fb2), "snapshot current after {p}");
        }
    }

    #[test]
    fn positions_are_cell_centres_in_bounds() {
        let res = Resolution::new(100, 200);
        let g = GridSampler::new(res, 10, 20);
        for (x, y) in g.positions() {
            assert!(res.contains(x, y));
        }
        // First cell centre of a 10-col grid over 100px is pixel 5.
        assert_eq!(g.positions().next(), Some((5, 5)));
        assert_eq!(g.positions().count(), g.sample_count());
    }

    #[test]
    fn identical_buffers_do_not_differ() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 1000);
        let fb = FrameBuffer::new(res);
        let snap = g.sample(&fb);
        assert!(!g.differs(&fb, &snap));
        assert_eq!(g.changed_points(&fb, &snap), 0);
    }

    #[test]
    fn full_screen_change_detected() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 1000);
        let mut fb = FrameBuffer::new(res);
        let snap = g.sample(&fb);
        fb.fill(Pixel::WHITE);
        assert!(g.differs(&fb, &snap));
        assert_eq!(g.changed_points(&fb, &snap), g.sample_count());
    }

    #[test]
    fn tiny_change_between_grid_points_is_missed() {
        // This is the Fig. 6 failure mode for coarse grids: a change
        // smaller than a grid cell that avoids every sample point.
        let res = Resolution::new(100, 100);
        let g = GridSampler::new(res, 2, 2); // samples at (25,25),(75,25),...
        let mut fb = FrameBuffer::new(res);
        let snap = g.sample(&fb);
        fb.fill_rect(Rect::new(0, 0, 3, 3), Pixel::WHITE);
        assert!(!g.differs(&fb, &snap), "coarse grid should miss a 3x3 change");
        // The full sampler never misses.
        let full = GridSampler::full(res);
        let mut fb2 = FrameBuffer::new(res);
        let snap2 = full.sample(&fb2);
        fb2.fill_rect(Rect::new(0, 0, 3, 3), Pixel::WHITE);
        assert!(full.differs(&fb2, &snap2));
    }

    #[test]
    fn sample_into_reuses_allocation() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 500);
        let fb = FrameBuffer::new(res);
        let mut buf = Vec::new();
        g.sample_into(&fb, &mut buf);
        assert_eq!(buf.len(), g.sample_count());
        let ptr = buf.as_ptr();
        g.sample_into(&fb, &mut buf);
        assert_eq!(buf.as_ptr(), ptr, "no reallocation expected");
    }

    #[test]
    fn fused_capture_matches_compare_then_sample() {
        let res = Resolution::new(100, 100);
        let g = GridSampler::new(res, 10, 10);
        let mut fb = FrameBuffer::new(res);
        let mut fused = g.sample(&fb);
        let mut naive = fused.clone();

        for step in 0..4 {
            match step {
                0 => fb.fill_rect(Rect::new(20, 20, 30, 30), Pixel::WHITE),
                1 => fb.touch(),
                2 => fb.fill(Pixel::grey(40)),
                _ => fb.set_pixel(25, 25, Pixel::WHITE),
            }
            let expected = g.compare(&fb, &naive);
            g.sample_into(&fb, &mut naive);
            let got = g.compare_and_capture(&fb, &mut fused);
            assert_eq!(got.differs, expected.differs, "step {step}");
            assert_eq!(got.points_compared, expected.points_compared, "step {step}");
            assert_eq!(got.points_read, g.sample_count());
            assert_eq!(fused, naive, "snapshots diverged at step {step}");
        }
    }

    #[test]
    fn damaged_capture_reads_only_damaged_points() {
        let res = Resolution::new(100, 100);
        let g = GridSampler::new(res, 10, 10); // samples at 5, 15, …, 95
        let mut fb = FrameBuffer::new(res);
        let mut snap = g.sample(&fb);

        // A 20×20 write covers exactly a 2×2 block of sample points.
        fb.fill_rect(Rect::new(10, 10, 20, 20), Pixel::WHITE);
        let damage = fb.take_damage();
        let r = g.compare_and_capture_damaged(&fb, &damage, &mut snap);
        assert!(r.differs);
        assert_eq!(r.points_read, 4);
        assert!(r.points_compared <= 4);
        assert_eq!(snap, g.sample(&fb), "snapshot must stay current");
    }

    #[test]
    fn damaged_capture_between_sample_points_reads_nothing() {
        let res = Resolution::new(100, 100);
        let g = GridSampler::new(res, 10, 10);
        let mut fb = FrameBuffer::new(res);
        let mut snap = g.sample(&fb);

        // Damage that dodges every sample point: x in [6, 14), y in [6, 14).
        fb.fill_rect(Rect::new(6, 6, 8, 8), Pixel::WHITE);
        let damage = fb.take_damage();
        let r = g.compare_and_capture_damaged(&fb, &damage, &mut snap);
        assert!(!r.differs, "sub-cell change is invisible to the grid");
        assert_eq!(r.points_read, 0);
        // The full comparison agrees: no sampled point changed.
        assert!(!g.differs(&fb, &snap));
    }

    #[test]
    fn damaged_capture_with_empty_damage_is_free() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 500);
        let mut fb = FrameBuffer::new(res);
        let mut snap = g.sample(&fb);
        fb.touch();
        let r = g.compare_and_capture_damaged(&fb, &DamageRegion::new(), &mut snap);
        assert_eq!(
            r,
            GridCompare {
                differs: false,
                points_compared: 0,
                points_read: 0
            }
        );
    }

    #[test]
    fn damaged_capture_matches_full_capture_on_multiple_rects() {
        use crate::damage::DamageRegion;
        let res = Resolution::new(64, 64);
        let g = GridSampler::new(res, 8, 8);
        let mut fb_a = FrameBuffer::new(res);
        let mut fb_b = FrameBuffer::new(res);
        let mut snap_full = g.sample(&fb_a);
        let mut snap_damaged = snap_full.clone();

        let rects = [
            Rect::new(0, 0, 12, 12),
            Rect::new(30, 30, 9, 9),
            Rect::new(50, 2, 10, 60),
        ];
        let mut damage = DamageRegion::new();
        for r in rects {
            fb_a.fill_rect(r, Pixel::WHITE);
            fb_b.fill_rect(r, Pixel::WHITE);
            damage.add(r);
        }
        let full = g.compare_and_capture(&fb_a, &mut snap_full);
        let restricted = g.compare_and_capture_damaged(&fb_b, &damage, &mut snap_damaged);
        assert_eq!(full.differs, restricted.differs);
        assert!(restricted.points_read < g.sample_count());
        assert_eq!(snap_full, snap_damaged);
    }

    #[test]
    fn damaged_capture_dense_rows_match_strided_reference() {
        // A full sampler sees every damaged column as one dense row
        // window; a 47-column sampler over the same screen sees strided,
        // split runs. Both must agree with the from-scratch sample.
        let res = Resolution::new(100, 40);
        for g in [GridSampler::full(res), GridSampler::new(res, 47, 13)] {
            let mut fb = FrameBuffer::new(res);
            let mut snap = g.sample(&fb);
            fb.fill_rect(Rect::new(13, 7, 61, 19), Pixel::grey(99));
            let damage = fb.take_damage();
            let r = g.compare_and_capture_damaged(&fb, &damage, &mut snap);
            assert!(r.differs);
            assert_eq!(snap, g.sample(&fb), "snapshot current ({}x{})", g.cols(), g.rows());
            assert!(r.points_compared <= r.points_read);
        }
    }

    #[test]
    fn degenerate_budgets_and_resolutions_are_exact() {
        // Zero budget: panic-free, minimal one-point sampler.
        let g = GridSampler::for_pixel_budget(Resolution::new(100, 100), 0);
        assert_eq!((g.cols(), g.rows()), (1, 1));
        let g = GridSampler::for_pixel_budget(Resolution::new(1, 1), 0);
        assert_eq!(g.sample_count(), 1);
        // Budget of one: the single centre point.
        let g = GridSampler::for_pixel_budget(Resolution::GALAXY_S3, 1);
        assert_eq!((g.cols(), g.rows()), (1, 1));
        // Single-row screen: exactly `budget` samples along the row.
        let g = GridSampler::for_pixel_budget(Resolution::new(100, 1), 4);
        assert_eq!((g.cols(), g.rows()), (4, 1));
        // Single-column screen: exactly `budget` samples down the column.
        let g = GridSampler::for_pixel_budget(Resolution::new(1, 100), 4);
        assert_eq!((g.cols(), g.rows()), (1, 4));
        // Budget at or above the pixel count: the full sampler.
        for budget in [100usize, 101, usize::MAX] {
            let g = GridSampler::for_pixel_budget(Resolution::new(10, 10), budget);
            assert_eq!((g.cols(), g.rows()), (10, 10), "budget {budget}");
        }
        // The paper configuration is unchanged by the hardening.
        let g = GridSampler::for_pixel_budget(Resolution::GALAXY_S3, 9216);
        assert_eq!((g.cols(), g.rows()), (72, 128));
    }

    #[test]
    fn tiled_capture_matches_damaged_reference() {
        let res = Resolution::new(200, 150); // 4×3 tiles with uneven edges
        for g in [GridSampler::full(res), GridSampler::new(res, 37, 29)] {
            let mut fb = FrameBuffer::new(res);
            fb.fill(Pixel::grey(20));
            let mut snap_ref = g.sample(&fb);
            let mut snap_tiled = snap_ref.clone();
            fb.take_damage();
            let lcg = fb.content_generation();

            // Mixed frame: a tile-covering solid fill, a small unknown
            // write, and a large untouched (clean) remainder.
            fb.fill_rect(Rect::new(0, 64, 64, 64), Pixel::grey(90));
            fb.fill_rect(Rect::new(130, 10, 17, 9), Pixel::WHITE);
            let damage = fb.take_damage();

            let reference = g.compare_and_capture_damaged(&fb, &damage, &mut snap_ref);
            let tiled =
                g.compare_and_capture_tiled(&fb, &damage, lcg, &mut snap_tiled);
            assert_eq!(tiled.grid.differs, reference.differs);
            assert_eq!(tiled.grid.points_compared, reference.points_compared);
            assert_eq!(snap_tiled, snap_ref, "snapshot bytes must match");
            assert!(tiled.grid.points_read <= reference.points_read);
            assert!(tiled.tiles_descended > 0);
            assert!(tiled.tiles_checked >= tiled.tiles_descended);
        }
    }

    #[test]
    fn tiled_capture_resolves_solid_tiles_with_zero_reads() {
        let res = Resolution::GALAXY_S3;
        let g = GridSampler::for_pixel_budget(res, 9216);
        let mut fb = FrameBuffer::new(res);
        let mut snap = g.sample(&fb);
        fb.take_damage();
        let lcg = fb.content_generation();
        fb.fill(Pixel::grey(70));
        let damage = fb.take_damage();
        let r = g.compare_and_capture_tiled(&fb, &damage, lcg, &mut snap);
        assert!(r.grid.differs);
        assert_eq!(r.grid.points_read, 0, "solid tiles need no pixel reads");
        assert_eq!(r.grid.points_compared, 1, "first point already differs");
        assert_eq!(snap, g.sample(&fb), "snapshot must stay current");
        assert_eq!(r.tiles_checked, 240); // 12×20 tile grid, all checked
        assert_eq!(r.tiles_descended, 240); // … and all written
    }

    #[test]
    fn tiled_capture_skips_clean_tiles_inside_stale_damage() {
        // Damage may over-approximate (merged rects): tiles no write
        // ever touched stay clean and are skipped outright, so the two
        // pruning mechanisms compose instead of fighting.
        let res = Resolution::new(256, 64); // 4×1 tiles
        let g = GridSampler::full(res);
        let mut fb = FrameBuffer::new(res);
        let mut snap = g.sample(&fb);
        fb.take_damage();
        let lcg = fb.content_generation();
        fb.set_pixel(0, 0, Pixel::WHITE);
        // Hand the comparator the whole screen as damage: only the one
        // written tile descends.
        let damage = DamageRegion::of(res.bounds());
        let r = g.compare_and_capture_tiled(&fb, &damage, lcg, &mut snap);
        assert!(r.grid.differs);
        assert_eq!(r.tiles_checked, 4);
        assert_eq!(r.tiles_descended, 1);
        assert_eq!(r.grid.points_read, 64 * 64, "one tile's points only");
        assert_eq!(snap, g.sample(&fb), "snapshot must stay current");
    }

    #[test]
    fn same_colour_refill_descends_but_stays_equal() {
        // The closest thing to a "signature collision" in this scheme:
        // the stamp says dirty while the content is identical. The cost
        // is a (read-free) descent; the verdict is still unchanged.
        let res = Resolution::new(128, 128); // 2×2 tiles
        let g = GridSampler::new(res, 16, 16);
        let mut fb = FrameBuffer::new(res);
        fb.fill(Pixel::grey(42));
        let mut snap = g.sample(&fb);
        fb.take_damage();
        let lcg = fb.content_generation();
        fb.fill(Pixel::grey(42)); // identical refill: stamps advance
        let damage = fb.take_damage();
        let r = g.compare_and_capture_tiled(&fb, &damage, lcg, &mut snap);
        assert!(!r.grid.differs, "identical content is never misclassified");
        assert_eq!(r.grid.points_compared, g.sample_count());
        assert_eq!(r.tiles_descended, 4, "the stamp forces a descent");
        assert_eq!(r.grid.points_read, 0, "…but a solid descent reads nothing");
    }

    #[test]
    fn tiled_capture_with_empty_damage_is_free() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 500);
        let mut fb = FrameBuffer::new(res);
        let mut snap = g.sample(&fb);
        let lcg = fb.content_generation();
        fb.touch();
        let r = g.compare_and_capture_tiled(&fb, &DamageRegion::new(), lcg, &mut snap);
        assert_eq!(
            r,
            TileCompare {
                grid: GridCompare {
                    differs: false,
                    points_compared: 0,
                    points_read: 0
                },
                tiles_checked: 0,
                tiles_descended: 0,
            }
        );
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn differs_rejects_bad_snapshot() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 500);
        let fb = FrameBuffer::new(res);
        let _ = g.differs(&fb, &[]);
    }

    #[test]
    #[should_panic(expected = "exceeds resolution")]
    fn grid_larger_than_screen_rejected() {
        let _ = GridSampler::new(Resolution::new(10, 10), 11, 10);
    }
}
