//! Grid-based framebuffer comparison (paper §3.1).
//!
//! Comparing every pixel of a modern panel is too slow to run per frame
//! (Fig. 6: > 40 ms at 720×1280, against a 16.67 ms frame budget at 60 Hz).
//! The paper instead samples the *centre pixel of each cell* of a coarse
//! grid laid over the screen and treats that pixel as representative of the
//! cell. [`GridSampler`] precomputes those sample positions once, so a
//! per-frame comparison is a tight gather-and-compare over a few thousand
//! pixels.

use crate::buffer::FrameBuffer;
use crate::damage::DamageRegion;
use crate::geometry::Resolution;
use crate::pixel::Pixel;

/// Outcome of one grid comparison: the verdict plus how much work it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCompare {
    /// Whether any inspected grid point changed.
    pub differs: bool,
    /// Grid points compared against the snapshot before the early exit
    /// (equals the number of candidate points when nothing differed).
    pub points_compared: usize,
    /// Grid points whose framebuffer pixel was actually read, comparisons
    /// and snapshot refreshes combined. This is the per-frame gather cost:
    /// [`GridSampler::compare`] reads each compared point once, the fused
    /// [`GridSampler::compare_and_capture`] reads every grid point exactly
    /// once, and the damage-restricted variant reads only the points
    /// inside the damage region.
    pub points_read: usize,
}

/// Precomputed sample positions for grid-based comparison.
///
/// # Examples
///
/// ```
/// use ccdem_pixelbuf::buffer::FrameBuffer;
/// use ccdem_pixelbuf::geometry::Resolution;
/// use ccdem_pixelbuf::grid::GridSampler;
/// use ccdem_pixelbuf::pixel::Pixel;
///
/// let res = Resolution::GALAXY_S3;
/// // The paper's 9K-pixel configuration: a 72×128 grid.
/// let sampler = GridSampler::new(res, 72, 128);
/// assert_eq!(sampler.sample_count(), 9216);
///
/// let mut fb = FrameBuffer::new(res);
/// let before = sampler.sample(&fb);
/// fb.fill(Pixel::WHITE);
/// assert!(sampler.differs(&fb, &before));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSampler {
    resolution: Resolution,
    cols: u32,
    rows: u32,
    indices: Vec<usize>,
    /// Sample x-coordinate of each grid column, strictly increasing.
    col_xs: Vec<u32>,
    /// Sample y-coordinate of each grid row, strictly increasing.
    row_ys: Vec<u32>,
}

impl GridSampler {
    /// Creates a sampler with a `cols`×`rows` grid over `resolution`,
    /// sampling the centre pixel of each cell.
    ///
    /// # Panics
    ///
    /// Panics if `cols`/`rows` is zero or exceeds the resolution.
    pub fn new(resolution: Resolution, cols: u32, rows: u32) -> GridSampler {
        assert!(cols > 0 && rows > 0, "grid dimensions must be non-zero");
        assert!(
            cols <= resolution.width && rows <= resolution.height,
            "grid {cols}x{rows} exceeds resolution {resolution}"
        );
        let w = resolution.width as usize;
        // Centre of each cell, in pixel coordinates. Both axes are
        // strictly increasing (the cell pitch is at least one pixel), so
        // damage rectangles map to grid index ranges by binary search.
        let col_xs: Vec<u32> = (0..cols)
            .map(|gx| ((2 * gx + 1) * resolution.width) / (2 * cols))
            .collect();
        let row_ys: Vec<u32> = (0..rows)
            .map(|gy| ((2 * gy + 1) * resolution.height) / (2 * rows))
            .collect();
        let mut indices = Vec::with_capacity((cols as usize) * (rows as usize));
        for &y in &row_ys {
            for &x in &col_xs {
                indices.push((y as usize) * w + x as usize);
            }
        }
        GridSampler {
            resolution,
            cols,
            rows,
            indices,
            col_xs,
            row_ys,
        }
    }

    /// Creates a sampler that compares every pixel (the grid equals the
    /// resolution). This is the Fig. 6 "921K" configuration.
    pub fn full(resolution: Resolution) -> GridSampler {
        GridSampler::new(resolution, resolution.width, resolution.height)
    }

    /// Creates a sampler whose sample count is at most `budget` pixels,
    /// with the grid shaped to the screen's aspect ratio.
    ///
    /// For the Galaxy S3 (720×1280) the paper's budgets map to:
    /// 2304 → 36×64, 9216 → 72×128, 36864 → 144×256.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn for_pixel_budget(resolution: Resolution, budget: usize) -> GridSampler {
        assert!(budget > 0, "pixel budget must be non-zero");
        if budget >= resolution.pixel_count() {
            return GridSampler::full(resolution);
        }
        let aspect = f64::from(resolution.width) / f64::from(resolution.height);
        let mut cols = ((budget as f64 * aspect).sqrt().floor() as u32)
            .clamp(1, resolution.width);
        let mut rows = ((budget / cols as usize) as u32).clamp(1, resolution.height);
        // Guard rounding: never exceed the budget.
        while (cols as usize) * (rows as usize) > budget {
            if rows > 1 {
                rows -= 1;
            } else {
                cols -= 1;
            }
        }
        GridSampler::new(resolution, cols, rows)
    }

    /// The resolution this sampler was built for.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Grid width in cells.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Grid height in cells.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of pixels compared per frame.
    pub fn sample_count(&self) -> usize {
        self.indices.len()
    }

    /// Gathers the sampled pixels of `buffer` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the buffer resolution does not match the sampler's.
    pub fn sample(&self, buffer: &FrameBuffer) -> Vec<Pixel> {
        let mut out = vec![Pixel::TRANSPARENT; self.indices.len()];
        self.sample_into(buffer, &mut out);
        out
    }

    /// Gathers the sampled pixels of `buffer` into `out`, resizing it to
    /// [`sample_count`](Self::sample_count). Reusing `out` across frames
    /// avoids per-frame allocation (this is the double-buffering "extra
    /// buffer" of §3.1).
    ///
    /// # Panics
    ///
    /// Panics if the buffer resolution does not match the sampler's.
    pub fn sample_into(&self, buffer: &FrameBuffer, out: &mut Vec<Pixel>) {
        self.check_buffer(buffer);
        let pixels = buffer.as_pixels();
        out.resize(self.indices.len(), Pixel::TRANSPARENT);
        for (dst, &i) in out.iter_mut().zip(&self.indices) {
            *dst = pixels[i];
        }
    }

    /// Whether the current buffer content differs from a previously
    /// captured sample at any grid point. Early-exits on the first
    /// difference, so redundant frames pay the full scan and changed
    /// frames usually return almost immediately.
    ///
    /// # Panics
    ///
    /// Panics if resolutions mismatch or `previous` has the wrong length.
    pub fn differs(&self, buffer: &FrameBuffer, previous: &[Pixel]) -> bool {
        self.compare(buffer, previous).differs
    }

    /// Compares the current buffer against a previously captured sample,
    /// reporting both the verdict and how many grid points were actually
    /// inspected before the early exit — the per-frame comparison cost
    /// that grid sampling exists to bound (paper §3.1, Fig. 6).
    ///
    /// A redundant frame inspects every point
    /// ([`sample_count`](Self::sample_count)); a changed frame stops at
    /// the first differing point.
    ///
    /// # Panics
    ///
    /// Panics if resolutions mismatch or `previous` has the wrong length.
    ///
    /// # Examples
    ///
    /// ```
    /// use ccdem_pixelbuf::buffer::FrameBuffer;
    /// use ccdem_pixelbuf::geometry::Resolution;
    /// use ccdem_pixelbuf::grid::GridSampler;
    /// use ccdem_pixelbuf::pixel::Pixel;
    ///
    /// let g = GridSampler::new(Resolution::new(100, 100), 10, 10);
    /// let mut fb = FrameBuffer::new(Resolution::new(100, 100));
    /// let snap = g.sample(&fb);
    ///
    /// let unchanged = g.compare(&fb, &snap);
    /// assert!(!unchanged.differs);
    /// assert_eq!(unchanged.points_compared, g.sample_count());
    ///
    /// fb.fill(Pixel::WHITE);
    /// let changed = g.compare(&fb, &snap);
    /// assert!(changed.differs);
    /// assert_eq!(changed.points_compared, 1); // first point already differs
    /// ```
    pub fn compare(&self, buffer: &FrameBuffer, previous: &[Pixel]) -> GridCompare {
        self.check_snapshot(buffer, previous);
        let pixels = buffer.as_pixels();
        for (n, (&i, &prev)) in self.indices.iter().zip(previous).enumerate() {
            if pixels[i] != prev {
                return GridCompare {
                    differs: true,
                    points_compared: n + 1,
                    points_read: n + 1,
                };
            }
        }
        GridCompare {
            differs: false,
            points_compared: self.indices.len(),
            points_read: self.indices.len(),
        }
    }

    /// Compares the current buffer against `snapshot` and refreshes the
    /// snapshot to the current content, in a single gather: each grid
    /// point is read exactly once, where a separate
    /// [`compare`](Self::compare) + [`sample_into`](Self::sample_into)
    /// pair reads redundant frames twice. The verdict is identical to
    /// `compare` and the refreshed snapshot is identical to
    /// `sample_into`'s output.
    ///
    /// Comparisons stop at the first difference (`points_compared`
    /// early-exits like `compare`), but every point is still read to keep
    /// the snapshot current, so `points_read` always equals
    /// [`sample_count`](Self::sample_count).
    ///
    /// # Panics
    ///
    /// Panics if resolutions mismatch or `snapshot` has the wrong length
    /// (prime it first with [`sample_into`](Self::sample_into)).
    pub fn compare_and_capture(
        &self,
        buffer: &FrameBuffer,
        snapshot: &mut [Pixel],
    ) -> GridCompare {
        self.check_snapshot(buffer, snapshot);
        let pixels = buffer.as_pixels();
        let mut differs = false;
        let mut points_compared = 0;
        for (slot, &i) in snapshot.iter_mut().zip(&self.indices) {
            let current = pixels[i];
            if !differs {
                points_compared += 1;
                differs = current != *slot;
            }
            *slot = current;
        }
        GridCompare {
            differs,
            points_compared,
            points_read: self.indices.len(),
        }
    }

    /// Damage-restricted [`compare_and_capture`](Self::compare_and_capture):
    /// inspects and refreshes only the grid points whose sample position
    /// lies inside `damage`, reading nothing else.
    ///
    /// **Soundness contract:** `damage` must cover every pixel of `buffer`
    /// written since `snapshot` was last captured (the guarantee
    /// [`FrameBuffer::take_damage`] provides). Points outside the damage
    /// are then unchanged, so skipping them cannot alter the verdict and
    /// the snapshot remains current everywhere. Per damage rectangle the
    /// intersecting grid rows/columns are found by binary search, so the
    /// cost is O(points inside the damage), not O(grid).
    ///
    /// # Panics
    ///
    /// Panics if resolutions mismatch or `snapshot` has the wrong length.
    pub fn compare_and_capture_damaged(
        &self,
        buffer: &FrameBuffer,
        damage: &DamageRegion,
        snapshot: &mut [Pixel],
    ) -> GridCompare {
        self.check_snapshot(buffer, snapshot);
        let pixels = buffer.as_pixels();
        let mut differs = false;
        let mut points_compared = 0;
        let mut points_read = 0;
        // Damage rects are disjoint and both coordinate axes are strictly
        // increasing, so each grid point is visited at most once.
        for rect in damage.rects() {
            let (gx0, gx1) = Self::axis_range(&self.col_xs, rect.x, rect.right());
            let (gy0, gy1) = Self::axis_range(&self.row_ys, rect.y, rect.bottom());
            for gy in gy0..gy1 {
                let base = gy * self.cols as usize;
                for gx in gx0..gx1 {
                    let n = base + gx;
                    let current = pixels[self.indices[n]];
                    points_read += 1;
                    if !differs {
                        points_compared += 1;
                        differs = current != snapshot[n];
                    }
                    snapshot[n] = current;
                }
            }
        }
        GridCompare {
            differs,
            points_compared,
            points_read,
        }
    }

    /// Number of grid points whose pixel differs from the captured sample.
    pub fn changed_points(&self, buffer: &FrameBuffer, previous: &[Pixel]) -> usize {
        self.check_snapshot(buffer, previous);
        let pixels = buffer.as_pixels();
        self.indices
            .iter()
            .zip(previous)
            .filter(|&(&i, &prev)| pixels[i] != prev)
            .count()
    }

    /// The `(x, y)` screen position of each sample point, in grid order,
    /// without allocating.
    pub fn positions(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let w = self.resolution.width as usize;
        self.indices
            .iter()
            .map(move |&i| ((i % w) as u32, (i / w) as u32))
    }

    /// The half-open range of grid indices whose sample coordinate lies in
    /// `[lo, hi)`, on one strictly increasing axis.
    fn axis_range(coords: &[u32], lo: u32, hi: u32) -> (usize, usize) {
        let start = coords.partition_point(|&c| c < lo);
        let end = coords.partition_point(|&c| c < hi);
        (start, end)
    }

    fn check_buffer(&self, buffer: &FrameBuffer) {
        assert_eq!(
            buffer.resolution(),
            self.resolution,
            "buffer resolution does not match sampler"
        );
    }

    fn check_snapshot(&self, buffer: &FrameBuffer, snapshot: &[Pixel]) {
        self.check_buffer(buffer);
        assert_eq!(
            snapshot.len(),
            self.indices.len(),
            "previous sample has wrong length"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    #[test]
    fn paper_grid_dimensions() {
        let res = Resolution::GALAXY_S3;
        assert_eq!(GridSampler::new(res, 36, 64).sample_count(), 2304);
        assert_eq!(GridSampler::new(res, 48, 85).sample_count(), 4080);
        assert_eq!(GridSampler::new(res, 72, 128).sample_count(), 9216);
        assert_eq!(GridSampler::new(res, 144, 256).sample_count(), 36864);
        assert_eq!(GridSampler::full(res).sample_count(), 921_600);
    }

    #[test]
    fn budget_sampler_respects_budget_and_aspect() {
        let res = Resolution::GALAXY_S3;
        for budget in [2304usize, 4080, 9216, 36864, 100_000] {
            let g = GridSampler::for_pixel_budget(res, budget);
            assert!(g.sample_count() <= budget, "budget {budget} exceeded");
            assert!(g.sample_count() * 2 > budget, "budget {budget} underused");
        }
        let full = GridSampler::for_pixel_budget(res, usize::MAX);
        assert_eq!(full.sample_count(), res.pixel_count());
    }

    #[test]
    fn budget_9216_matches_paper_grid() {
        let g = GridSampler::for_pixel_budget(Resolution::GALAXY_S3, 9216);
        assert_eq!((g.cols(), g.rows()), (72, 128));
    }

    #[test]
    fn positions_are_cell_centres_in_bounds() {
        let res = Resolution::new(100, 200);
        let g = GridSampler::new(res, 10, 20);
        for (x, y) in g.positions() {
            assert!(res.contains(x, y));
        }
        // First cell centre of a 10-col grid over 100px is pixel 5.
        assert_eq!(g.positions().next(), Some((5, 5)));
        assert_eq!(g.positions().count(), g.sample_count());
    }

    #[test]
    fn identical_buffers_do_not_differ() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 1000);
        let fb = FrameBuffer::new(res);
        let snap = g.sample(&fb);
        assert!(!g.differs(&fb, &snap));
        assert_eq!(g.changed_points(&fb, &snap), 0);
    }

    #[test]
    fn full_screen_change_detected() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 1000);
        let mut fb = FrameBuffer::new(res);
        let snap = g.sample(&fb);
        fb.fill(Pixel::WHITE);
        assert!(g.differs(&fb, &snap));
        assert_eq!(g.changed_points(&fb, &snap), g.sample_count());
    }

    #[test]
    fn tiny_change_between_grid_points_is_missed() {
        // This is the Fig. 6 failure mode for coarse grids: a change
        // smaller than a grid cell that avoids every sample point.
        let res = Resolution::new(100, 100);
        let g = GridSampler::new(res, 2, 2); // samples at (25,25),(75,25),...
        let mut fb = FrameBuffer::new(res);
        let snap = g.sample(&fb);
        fb.fill_rect(Rect::new(0, 0, 3, 3), Pixel::WHITE);
        assert!(!g.differs(&fb, &snap), "coarse grid should miss a 3x3 change");
        // The full sampler never misses.
        let full = GridSampler::full(res);
        let mut fb2 = FrameBuffer::new(res);
        let snap2 = full.sample(&fb2);
        fb2.fill_rect(Rect::new(0, 0, 3, 3), Pixel::WHITE);
        assert!(full.differs(&fb2, &snap2));
    }

    #[test]
    fn sample_into_reuses_allocation() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 500);
        let fb = FrameBuffer::new(res);
        let mut buf = Vec::new();
        g.sample_into(&fb, &mut buf);
        assert_eq!(buf.len(), g.sample_count());
        let ptr = buf.as_ptr();
        g.sample_into(&fb, &mut buf);
        assert_eq!(buf.as_ptr(), ptr, "no reallocation expected");
    }

    #[test]
    fn fused_capture_matches_compare_then_sample() {
        let res = Resolution::new(100, 100);
        let g = GridSampler::new(res, 10, 10);
        let mut fb = FrameBuffer::new(res);
        let mut fused = g.sample(&fb);
        let mut naive = fused.clone();

        for step in 0..4 {
            match step {
                0 => fb.fill_rect(Rect::new(20, 20, 30, 30), Pixel::WHITE),
                1 => fb.touch(),
                2 => fb.fill(Pixel::grey(40)),
                _ => fb.set_pixel(25, 25, Pixel::WHITE),
            }
            let expected = g.compare(&fb, &naive);
            g.sample_into(&fb, &mut naive);
            let got = g.compare_and_capture(&fb, &mut fused);
            assert_eq!(got.differs, expected.differs, "step {step}");
            assert_eq!(got.points_compared, expected.points_compared, "step {step}");
            assert_eq!(got.points_read, g.sample_count());
            assert_eq!(fused, naive, "snapshots diverged at step {step}");
        }
    }

    #[test]
    fn damaged_capture_reads_only_damaged_points() {
        let res = Resolution::new(100, 100);
        let g = GridSampler::new(res, 10, 10); // samples at 5, 15, …, 95
        let mut fb = FrameBuffer::new(res);
        let mut snap = g.sample(&fb);

        // A 20×20 write covers exactly a 2×2 block of sample points.
        fb.fill_rect(Rect::new(10, 10, 20, 20), Pixel::WHITE);
        let damage = fb.take_damage();
        let r = g.compare_and_capture_damaged(&fb, &damage, &mut snap);
        assert!(r.differs);
        assert_eq!(r.points_read, 4);
        assert!(r.points_compared <= 4);
        assert_eq!(snap, g.sample(&fb), "snapshot must stay current");
    }

    #[test]
    fn damaged_capture_between_sample_points_reads_nothing() {
        let res = Resolution::new(100, 100);
        let g = GridSampler::new(res, 10, 10);
        let mut fb = FrameBuffer::new(res);
        let mut snap = g.sample(&fb);

        // Damage that dodges every sample point: x in [6, 14), y in [6, 14).
        fb.fill_rect(Rect::new(6, 6, 8, 8), Pixel::WHITE);
        let damage = fb.take_damage();
        let r = g.compare_and_capture_damaged(&fb, &damage, &mut snap);
        assert!(!r.differs, "sub-cell change is invisible to the grid");
        assert_eq!(r.points_read, 0);
        // The full comparison agrees: no sampled point changed.
        assert!(!g.differs(&fb, &snap));
    }

    #[test]
    fn damaged_capture_with_empty_damage_is_free() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 500);
        let mut fb = FrameBuffer::new(res);
        let mut snap = g.sample(&fb);
        fb.touch();
        let r = g.compare_and_capture_damaged(&fb, &DamageRegion::new(), &mut snap);
        assert_eq!(
            r,
            GridCompare {
                differs: false,
                points_compared: 0,
                points_read: 0
            }
        );
    }

    #[test]
    fn damaged_capture_matches_full_capture_on_multiple_rects() {
        use crate::damage::DamageRegion;
        let res = Resolution::new(64, 64);
        let g = GridSampler::new(res, 8, 8);
        let mut fb_a = FrameBuffer::new(res);
        let mut fb_b = FrameBuffer::new(res);
        let mut snap_full = g.sample(&fb_a);
        let mut snap_damaged = snap_full.clone();

        let rects = [
            Rect::new(0, 0, 12, 12),
            Rect::new(30, 30, 9, 9),
            Rect::new(50, 2, 10, 60),
        ];
        let mut damage = DamageRegion::new();
        for r in rects {
            fb_a.fill_rect(r, Pixel::WHITE);
            fb_b.fill_rect(r, Pixel::WHITE);
            damage.add(r);
        }
        let full = g.compare_and_capture(&fb_a, &mut snap_full);
        let restricted = g.compare_and_capture_damaged(&fb_b, &damage, &mut snap_damaged);
        assert_eq!(full.differs, restricted.differs);
        assert!(restricted.points_read < g.sample_count());
        assert_eq!(snap_full, snap_damaged);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn differs_rejects_bad_snapshot() {
        let res = Resolution::QUARTER;
        let g = GridSampler::for_pixel_budget(res, 500);
        let fb = FrameBuffer::new(res);
        let _ = g.differs(&fb, &[]);
    }

    #[test]
    #[should_panic(expected = "exceeds resolution")]
    fn grid_larger_than_screen_rejected() {
        let _ = GridSampler::new(Resolution::new(10, 10), 11, 10);
    }
}
