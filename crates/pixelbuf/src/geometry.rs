//! Screen geometry: resolutions and rectangles.

use std::fmt;

/// A display resolution in pixels.
///
/// # Examples
///
/// ```
/// use ccdem_pixelbuf::geometry::Resolution;
///
/// let r = Resolution::GALAXY_S3;
/// assert_eq!(r.pixel_count(), 921_600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resolution {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Resolution {
    /// Samsung Galaxy S3 (SHV-E210S): 720×1280 HD, the paper's test device.
    pub const GALAXY_S3: Resolution = Resolution::new(720, 1280);

    /// A quarter-scale panel used to keep unit tests fast.
    pub const QUARTER: Resolution = Resolution::new(180, 320);

    /// Creates a resolution.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub const fn new(width: u32, height: u32) -> Resolution {
        assert!(width > 0 && height > 0, "resolution dimensions must be non-zero");
        Resolution { width, height }
    }

    /// Total number of pixels.
    pub const fn pixel_count(self) -> usize {
        (self.width as usize) * (self.height as usize)
    }

    /// The full-screen rectangle at this resolution.
    pub const fn bounds(self) -> Rect {
        Rect {
            x: 0,
            y: 0,
            width: self.width,
            height: self.height,
        }
    }

    /// Whether `(x, y)` lies on the screen.
    pub const fn contains(self, x: u32, y: u32) -> bool {
        x < self.width && y < self.height
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// An axis-aligned rectangle in screen coordinates.
///
/// # Examples
///
/// ```
/// use ccdem_pixelbuf::geometry::Rect;
///
/// let a = Rect::new(0, 0, 10, 10);
/// let b = Rect::new(5, 5, 10, 10);
/// assert_eq!(a.intersection(b), Some(Rect::new(5, 5, 5, 5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Rect {
    /// Creates a rectangle. Zero-sized rectangles are allowed and represent
    /// an empty region.
    pub const fn new(x: u32, y: u32, width: u32, height: u32) -> Rect {
        Rect {
            x,
            y,
            width,
            height,
        }
    }

    /// Area in pixels.
    pub const fn area(self) -> u64 {
        (self.width as u64) * (self.height as u64)
    }

    /// Whether the rectangle covers no pixels.
    pub const fn is_empty(self) -> bool {
        self.width == 0 || self.height == 0
    }

    /// Exclusive right edge.
    pub const fn right(self) -> u32 {
        self.x + self.width
    }

    /// Exclusive bottom edge.
    pub const fn bottom(self) -> u32 {
        self.y + self.height
    }

    /// Whether `(px, py)` lies inside.
    pub const fn contains(self, px: u32, py: u32) -> bool {
        px >= self.x && px < self.right() && py >= self.y && py < self.bottom()
    }

    /// The overlapping region of two rectangles, or `None` if disjoint or
    /// either is empty.
    pub fn intersection(self, other: Rect) -> Option<Rect> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        if x < right && y < bottom {
            Some(Rect::new(x, y, right - x, bottom - y))
        } else {
            None
        }
    }

    /// The smallest rectangle containing both inputs. An empty rectangle
    /// acts as the identity.
    pub fn union(self, other: Rect) -> Rect {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let right = self.right().max(other.right());
        let bottom = self.bottom().max(other.bottom());
        Rect::new(x, y, right - x, bottom - y)
    }

    /// Clips this rectangle to the screen bounds of `resolution`.
    /// Returns `None` if nothing remains visible.
    pub fn clipped_to(self, resolution: Resolution) -> Option<Rect> {
        self.intersection(resolution.bounds())
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}+{}+{}", self.width, self.height, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_bounds_and_counts() {
        let r = Resolution::new(4, 8);
        assert_eq!(r.pixel_count(), 32);
        assert_eq!(r.bounds(), Rect::new(0, 0, 4, 8));
        assert!(r.contains(3, 7));
        assert!(!r.contains(4, 0));
    }

    #[test]
    fn disjoint_rects_do_not_intersect() {
        let a = Rect::new(0, 0, 5, 5);
        let b = Rect::new(5, 0, 5, 5);
        assert_eq!(a.intersection(b), None);
    }

    #[test]
    fn intersection_commutes() {
        let a = Rect::new(2, 3, 10, 4);
        let b = Rect::new(5, 0, 4, 20);
        assert_eq!(a.intersection(b), b.intersection(a));
        assert_eq!(a.intersection(b), Some(Rect::new(5, 3, 4, 4)));
    }

    #[test]
    fn union_contains_both() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(10, 10, 2, 2);
        let u = a.union(b);
        assert!(u.contains(1, 1));
        assert!(u.contains(11, 11));
        assert_eq!(u, Rect::new(0, 0, 12, 12));
    }

    #[test]
    fn empty_rect_union_identity() {
        let a = Rect::new(3, 3, 4, 4);
        assert_eq!(a.union(Rect::default()), a);
        assert_eq!(Rect::default().union(a), a);
    }

    #[test]
    fn empty_rect_never_intersects() {
        let a = Rect::new(0, 0, 10, 10);
        assert_eq!(a.intersection(Rect::new(5, 5, 0, 3)), None);
    }

    #[test]
    fn clipping_to_screen() {
        let r = Resolution::new(100, 100);
        let partially_off = Rect::new(90, 90, 20, 20);
        assert_eq!(partially_off.clipped_to(r), Some(Rect::new(90, 90, 10, 10)));
        let fully_off = Rect::new(200, 0, 5, 5);
        assert_eq!(fully_off.clipped_to(r), None);
    }
}
