//! Drawing primitives used by the synthetic workloads.
//!
//! The workload models need to put *plausible* pixel churn on screen — full
//! redraws, scrolls, sprite-sized dots, UI-widget rectangles — so that the
//! grid-based comparison in `ccdem-core` sees the same kinds of spatial
//! change patterns the paper's commercial applications produced.

use ccdem_simkit::rng::SimRng;

use crate::buffer::FrameBuffer;
use crate::geometry::Rect;
use crate::pixel::Pixel;

/// Draws a filled square "dot" of side `2*radius + 1` centred at
/// `(cx, cy)`, clipped to the screen.
///
/// Used by the Nexus-Revamped-style live wallpaper, whose tiny moving dots
/// are the paper's worst case for grid sampling (Fig. 6).
pub fn draw_dot(fb: &mut FrameBuffer, cx: u32, cy: u32, radius: u32, colour: Pixel) {
    let side = 2 * radius + 1;
    let x = cx.saturating_sub(radius);
    let y = cy.saturating_sub(radius);
    // Shrink the extent by however much the square hung off the top/left,
    // so the dot is clipped rather than shifted.
    let w = side - (radius - (cx - x));
    let h = side - (radius - (cy - y));
    fb.fill_rect(Rect::new(x, y, w, h), colour);
}

/// Fills the buffer with a vertical luminance gradient between two greys.
///
/// A cheap stand-in for "a rendered app screen" that is spatially
/// non-uniform, so scrolls and partial updates produce detectable pixel
/// change at most grid points.
pub fn draw_gradient(fb: &mut FrameBuffer, top: u8, bottom: u8) {
    let h = fb.resolution().height;
    let w = fb.resolution().width;
    for y in 0..h {
        let t = f64::from(y) / f64::from(h.max(1));
        let v = (f64::from(top) * (1.0 - t) + f64::from(bottom) * t) as u8;
        fb.fill_rect(Rect::new(0, y, w, 1), Pixel::grey(v));
    }
}

/// Fills `rect` with per-pixel random noise from `rng`.
///
/// Models fully dynamic content (video, particle-heavy game scenes): every
/// pixel in the region changes on every call with high probability.
pub fn draw_noise(fb: &mut FrameBuffer, rect: Rect, rng: &mut SimRng) {
    if let Some(r) = rect.clipped_to(fb.resolution()) {
        for y in r.y..r.bottom() {
            for x in r.x..r.right() {
                let bits = rng.next_u64() as u32 | 0xFF00_0000;
                fb.set_pixel(x, y, Pixel::from_bits(bits));
            }
        }
    } else {
        fb.touch();
    }
}

/// Draws a row of alternating-colour "text line" blocks inside `rect`.
///
/// Models list/feed content: structured, mostly static rows whose pixels
/// change coherently when the list scrolls.
pub fn draw_text_rows(fb: &mut FrameBuffer, rect: Rect, row_height: u32, seed: u64) {
    if row_height == 0 {
        fb.touch();
        return;
    }
    let Some(r) = rect.clipped_to(fb.resolution()) else {
        fb.touch();
        return;
    };
    let mut y = r.y;
    let mut i = seed;
    while y < r.bottom() {
        let h = row_height.min(r.bottom() - y);
        // Alternate light rows with darker "text" bands; the seed shifts
        // the phase so consecutive frames of a scroll differ.
        let v = if i.is_multiple_of(2) {
            230
        } else {
            180u8.wrapping_add((i % 40) as u8)
        };
        fb.fill_rect(Rect::new(r.x, y, r.width, h), Pixel::grey(v));
        y += row_height;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Resolution;

    #[test]
    fn dot_is_clipped_at_origin() {
        let mut fb = FrameBuffer::new(Resolution::new(10, 10));
        draw_dot(&mut fb, 0, 0, 2, Pixel::WHITE);
        assert_eq!(fb.pixel(0, 0), Pixel::WHITE);
        assert_eq!(fb.pixel(2, 2), Pixel::WHITE);
        assert_eq!(fb.pixel(3, 3), Pixel::BLACK);
    }

    #[test]
    fn gradient_monotone_in_y() {
        let mut fb = FrameBuffer::new(Resolution::new(4, 32));
        draw_gradient(&mut fb, 0, 255);
        let top = fb.pixel(0, 0).luminance();
        let mid = fb.pixel(0, 16).luminance();
        let bot = fb.pixel(0, 31).luminance();
        assert!(top < mid && mid < bot);
    }

    #[test]
    fn noise_changes_region_only() {
        let mut fb = FrameBuffer::new(Resolution::new(16, 16));
        let mut rng = SimRng::seed_from_u64(1);
        draw_noise(&mut fb, Rect::new(0, 0, 8, 8), &mut rng);
        assert_eq!(fb.pixel(12, 12), Pixel::BLACK);
        // 64 random pixels: overwhelmingly unlikely to all stay black.
        let changed = (0..8)
            .flat_map(|y| (0..8).map(move |x| (x, y)))
            .filter(|&(x, y)| fb.pixel(x, y) != Pixel::BLACK)
            .count();
        assert!(changed > 32);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = FrameBuffer::new(Resolution::new(8, 8));
        let mut b = FrameBuffer::new(Resolution::new(8, 8));
        draw_noise(&mut a, Rect::new(0, 0, 8, 8), &mut SimRng::seed_from_u64(7));
        draw_noise(&mut b, Rect::new(0, 0, 8, 8), &mut SimRng::seed_from_u64(7));
        assert_eq!(a.as_pixels(), b.as_pixels());
    }

    #[test]
    fn text_rows_alternate() {
        let mut fb = FrameBuffer::new(Resolution::new(8, 8));
        draw_text_rows(&mut fb, Rect::new(0, 0, 8, 8), 2, 0);
        assert_ne!(fb.pixel(0, 0), fb.pixel(0, 2));
    }

    #[test]
    fn text_rows_phase_shifts_with_seed() {
        let mut a = FrameBuffer::new(Resolution::new(8, 8));
        let mut b = FrameBuffer::new(Resolution::new(8, 8));
        draw_text_rows(&mut a, Rect::new(0, 0, 8, 8), 2, 0);
        draw_text_rows(&mut b, Rect::new(0, 0, 8, 8), 2, 1);
        assert_ne!(a.as_pixels(), b.as_pixels());
    }

    #[test]
    fn degenerate_draws_still_touch() {
        let mut fb = FrameBuffer::new(Resolution::new(4, 4));
        let g0 = fb.generation();
        draw_text_rows(&mut fb, Rect::new(0, 0, 4, 4), 0, 0);
        draw_noise(&mut fb, Rect::new(100, 100, 2, 2), &mut SimRng::seed_from_u64(0));
        assert!(fb.generation() > g0);
    }
}
