//! Damage regions: which pixels a frame's draw operations may have
//! changed.
//!
//! Every [`FrameBuffer`](crate::buffer::FrameBuffer) draw op records the
//! rectangle it wrote into a [`DamageRegion`]. The region is a *sound
//! over-approximation*: a pixel outside the region is guaranteed
//! unchanged since the region was last [taken](crate::buffer::FrameBuffer::take_damage),
//! while a pixel inside it may or may not have changed value. That
//! one-sided guarantee is exactly what the content-rate meter needs — it
//! only has to inspect grid points *inside* the damage to classify a
//! frame, because points outside cannot have changed (paper §3.1's
//! comparison, restricted by the simulator's own draw-op information).
//!
//! The region is a small fixed-capacity set of **disjoint** rectangles.
//! Overlapping inserts are merged by union; once the capacity is
//! exceeded, everything collapses into a single bounding rectangle. Both
//! rules keep the representation `Copy`, allocation-free and cheap to
//! update from per-pixel draw loops, at the cost of over-approximating
//! scattered damage — which only ever makes the meter inspect more
//! points, never fewer.

use crate::geometry::Rect;

/// Maximum number of disjoint rectangles tracked before the region
/// collapses to a single bounding box.
pub const MAX_DAMAGE_RECTS: usize = 8;

/// A sound over-approximation of the pixels written since the last
/// [`clear`](DamageRegion::clear) / take, as at most
/// [`MAX_DAMAGE_RECTS`] disjoint rectangles.
///
/// # Examples
///
/// ```
/// use ccdem_pixelbuf::damage::DamageRegion;
/// use ccdem_pixelbuf::geometry::Rect;
///
/// let mut damage = DamageRegion::new();
/// assert!(damage.is_empty());
///
/// damage.add(Rect::new(0, 0, 4, 4));
/// damage.add(Rect::new(2, 2, 4, 4)); // overlaps: merged by union
/// assert_eq!(damage.rects(), &[Rect::new(0, 0, 6, 6)]);
///
/// damage.add(Rect::new(100, 100, 1, 1)); // disjoint: kept separate
/// assert_eq!(damage.rects().len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DamageRegion {
    rects: [Rect; MAX_DAMAGE_RECTS],
    len: u8,
}

impl DamageRegion {
    /// An empty region.
    pub const fn new() -> DamageRegion {
        DamageRegion {
            rects: [Rect::new(0, 0, 0, 0); MAX_DAMAGE_RECTS],
            len: 0,
        }
    }

    /// A region covering exactly `rect` (empty if `rect` is empty).
    pub fn of(rect: Rect) -> DamageRegion {
        let mut region = DamageRegion::new();
        region.add(rect);
        region
    }

    /// The disjoint damaged rectangles, in no particular order.
    pub fn rects(&self) -> &[Rect] {
        // `len ≤ MAX_DAMAGE_RECTS` is a struct invariant, so the prefix
        // lookup never misses.
        self.rects.get(..self.len as usize).unwrap_or(&[])
    }

    /// Whether no pixels are damaged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `(x, y)` lies inside the damaged region.
    pub fn contains(&self, x: u32, y: u32) -> bool {
        self.rects().iter().any(|r| r.contains(x, y))
    }

    /// The smallest rectangle covering the whole region (empty when the
    /// region is empty).
    pub fn bounding(&self) -> Rect {
        self.rects()
            .iter()
            .copied()
            .fold(Rect::default(), Rect::union)
    }

    /// Total damaged area in pixels (exact: the rectangles are disjoint).
    pub fn area(&self) -> u64 {
        self.rects().iter().map(|r| r.area()).sum()
    }

    /// Forgets all damage.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Takes the accumulated damage, leaving the region empty.
    pub fn take(&mut self) -> DamageRegion {
        let taken = *self;
        self.clear();
        taken
    }

    /// Adds `rect` to the region. Empty rectangles are ignored; a
    /// rectangle already covered by the region is a cheap no-op (the
    /// common case for per-pixel draw loops); overlapping rectangles are
    /// merged; overflow beyond [`MAX_DAMAGE_RECTS`] collapses the whole
    /// region into its bounding box.
    pub fn add(&mut self, rect: Rect) {
        if rect.is_empty() {
            return;
        }
        // Fast path: already covered by one tracked rect. Sequential
        // pixel writes land here almost every time once a surrounding
        // rect (or the collapsed bounding box) exists.
        for r in self.rects() {
            if r.contains(rect.x, rect.y)
                && r.contains(rect.right() - 1, rect.bottom() - 1)
            {
                return;
            }
        }
        // Merge with every rect the new one overlaps, preserving the
        // disjointness invariant (a union can newly overlap a third
        // rect, so loop to a fixed point).
        let mut merged = rect;
        while let Some((i, r)) = self
            .rects()
            .iter()
            .enumerate()
            .find(|(_, r)| r.intersection(merged).is_some())
            .map(|(i, &r)| (i, r))
        {
            merged = merged.union(r);
            self.remove(i);
        }
        if (self.len as usize) == MAX_DAMAGE_RECTS {
            // Capacity reached: collapse everything into one box.
            merged = self.rects().iter().copied().fold(merged, Rect::union);
            self.len = 0;
        }
        // The collapse above guarantees `len < MAX_DAMAGE_RECTS` here.
        if let Some(slot) = self.rects.get_mut(self.len as usize) {
            *slot = merged;
            self.len += 1;
        }
    }

    /// Adds every rectangle of `other`.
    pub fn add_region(&mut self, other: &DamageRegion) {
        for &r in other.rects() {
            self.add(r);
        }
    }

    fn remove(&mut self, i: usize) {
        let last = self.len as usize - 1;
        self.rects.swap(i, last);
        self.len -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_region_reports_empty() {
        let d = DamageRegion::new();
        assert!(d.is_empty());
        assert_eq!(d.rects(), &[] as &[Rect]);
        assert_eq!(d.area(), 0);
        assert!(d.bounding().is_empty());
    }

    #[test]
    fn empty_rect_ignored() {
        let mut d = DamageRegion::new();
        d.add(Rect::new(5, 5, 0, 10));
        assert!(d.is_empty());
    }

    #[test]
    fn disjoint_rects_kept_separate() {
        let mut d = DamageRegion::new();
        d.add(Rect::new(0, 0, 2, 2));
        d.add(Rect::new(10, 10, 2, 2));
        assert_eq!(d.rects().len(), 2);
        assert_eq!(d.area(), 8);
    }

    #[test]
    fn overlapping_rects_merge_to_union() {
        let mut d = DamageRegion::new();
        d.add(Rect::new(0, 0, 4, 4));
        d.add(Rect::new(2, 2, 4, 4));
        assert_eq!(d.rects(), &[Rect::new(0, 0, 6, 6)]);
    }

    #[test]
    fn merge_chains_to_fixed_point() {
        let mut d = DamageRegion::new();
        d.add(Rect::new(0, 0, 2, 2));
        d.add(Rect::new(6, 0, 2, 2));
        // Bridges both: all three must end up as one rect.
        d.add(Rect::new(1, 0, 6, 2));
        assert_eq!(d.rects(), &[Rect::new(0, 0, 8, 2)]);
    }

    #[test]
    fn contained_rect_is_noop() {
        let mut d = DamageRegion::of(Rect::new(0, 0, 10, 10));
        d.add(Rect::new(3, 3, 2, 2));
        assert_eq!(d.rects(), &[Rect::new(0, 0, 10, 10)]);
    }

    #[test]
    fn overflow_collapses_to_bounding_box() {
        let mut d = DamageRegion::new();
        for i in 0..=MAX_DAMAGE_RECTS as u32 {
            d.add(Rect::new(i * 10, 0, 1, 1));
        }
        assert_eq!(d.rects().len(), 1);
        let expect_w = MAX_DAMAGE_RECTS as u32 * 10 + 1;
        assert_eq!(d.bounding(), Rect::new(0, 0, expect_w, 1));
    }

    #[test]
    fn rects_stay_disjoint() {
        let mut d = DamageRegion::new();
        for (x, y) in [(0, 0), (5, 5), (3, 3), (20, 0), (4, 4), (19, 1)] {
            d.add(Rect::new(x, y, 4, 4));
        }
        let rects = d.rects();
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert_eq!(a.intersection(*b), None, "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn take_resets() {
        let mut d = DamageRegion::of(Rect::new(1, 1, 2, 2));
        let taken = d.take();
        assert!(d.is_empty());
        assert_eq!(taken.rects(), &[Rect::new(1, 1, 2, 2)]);
    }

    #[test]
    fn contains_point_queries() {
        let mut d = DamageRegion::of(Rect::new(0, 0, 2, 2));
        d.add(Rect::new(8, 8, 2, 2));
        assert!(d.contains(1, 1));
        assert!(d.contains(9, 9));
        assert!(!d.contains(4, 4));
    }
}
