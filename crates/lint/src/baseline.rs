//! The committed `lint.allow` baseline: a per-file violation ratchet.
//!
//! The baseline exists so a new lint can land as a hard CI gate before
//! every historical violation is burned down. Each line grants one
//! `(lint, file)` pair a maximum violation count:
//!
//! ```text
//! # comment
//! panic crates/pixelbuf/src/buffer.rs 12
//! ```
//!
//! Counts, not line numbers: edits elsewhere in a file must not churn
//! the baseline. The ratchet only turns one way — a file at or under
//! its budget passes, one over it fails (and the diagnostics are shown
//! in full), and `--fix-baseline` rewrites the file to the current
//! state so improvements get locked in.

use std::collections::BTreeMap;
use std::fmt;

use crate::diag::{Diagnostic, LintId};

/// The parsed baseline: `(lint, file) → allowed count`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(LintId, String), usize>,
}

/// A malformed baseline line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line in `lint.allow`.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.allow:{}: {}", self.line, self.message)
    }
}

impl Baseline {
    /// Parses the `lint.allow` text. Blank lines and `#` comments are
    /// skipped.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError`] for a line that is not
    /// `<lint-id> <path> <count>`.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut fields = trimmed.split_whitespace();
            let (Some(id), Some(path), Some(count), None) =
                (fields.next(), fields.next(), fields.next(), fields.next())
            else {
                return Err(BaselineError {
                    line,
                    message: format!("expected `<lint-id> <path> <count>`, got {trimmed:?}"),
                });
            };
            let Some(id) = LintId::parse(id) else {
                return Err(BaselineError {
                    line,
                    message: format!("unknown lint id {id:?}"),
                });
            };
            let Ok(count) = count.parse::<usize>() else {
                return Err(BaselineError {
                    line,
                    message: format!("count {count:?} is not an unsigned integer"),
                });
            };
            entries.insert((id, path.to_string()), count);
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline for `diagnostics`, sorted, with a header.
    pub fn render(diagnostics: &[Diagnostic]) -> String {
        let mut counts: BTreeMap<(LintId, &str), usize> = BTreeMap::new();
        for d in diagnostics {
            *counts.entry((d.id, d.file.as_str())).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# ccdem lint baseline: `<lint-id> <path> <count>` grants a file a\n\
             # maximum violation count (a ratchet, not a line list — see\n\
             # DESIGN.md §10). Regenerate with `ccdem lint --fix-baseline`.\n",
        );
        for ((id, file), count) in counts {
            out.push_str(&format!("{id} {file} {count}\n"));
        }
        out
    }

    /// Splits `diagnostics` into `(reported, baselined)`: for each
    /// `(lint, file)` group at or under its baseline budget, the whole
    /// group is baselined; any group over budget is reported in full,
    /// with a trailing note diagnostic naming the excess.
    ///
    /// Hot-path findings (`Diagnostic::hot`) are never baselined: they
    /// report regardless of budget and do not count against the
    /// group's budget — the ratchet cannot grandfather a panic or an
    /// allocation that the call graph proves reachable from a root.
    pub fn apply(&self, diagnostics: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
        let mut counts: BTreeMap<(LintId, String), usize> = BTreeMap::new();
        for d in diagnostics.iter().filter(|d| !d.hot) {
            *counts.entry((d.id, d.file.clone())).or_insert(0) += 1;
        }
        let mut reported = Vec::new();
        let mut baselined = Vec::new();
        for d in diagnostics {
            if d.hot {
                reported.push(d);
                continue;
            }
            let key = (d.id, d.file.clone());
            let found = counts.get(&key).copied().unwrap_or(0);
            let budget = self.entries.get(&key).copied().unwrap_or(0);
            if found <= budget {
                baselined.push(d);
            } else {
                reported.push(d);
            }
        }
        // One note per over-budget group with a non-zero budget, so the
        // failure explains itself.
        let over: Vec<(LintId, String)> = reported
            .iter()
            .map(|d| (d.id, d.file.clone()))
            .collect();
        let mut noted: Vec<(LintId, String)> = Vec::new();
        for key in over {
            let budget = self.entries.get(&key).copied().unwrap_or(0);
            let found = counts.get(&key).copied().unwrap_or(0);
            if budget > 0 && found > budget && !noted.contains(&key) {
                reported.push(Diagnostic::new(
                    key.0,
                    key.1.clone(),
                    0,
                    format!(
                        "{found} violations exceed the lint.allow budget of {budget}; \
                         fix the new ones or run `ccdem lint --fix-baseline`"
                    ),
                ));
                noted.push(key);
            }
        }
        (reported, baselined)
    }

    /// The `(lint, file) → budget` entries, in sorted order (for the
    /// stale-budget audit and `--stats`).
    pub fn entries(&self) -> impl Iterator<Item = (&(LintId, String), usize)> {
        self.entries.iter().map(|(k, &v)| (k, v))
    }

    /// Sum of all granted budgets.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    /// Number of `(lint, file)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline grants nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(id: LintId, file: &str, line: u32) -> Diagnostic {
        Diagnostic::new(id, file, line, "x")
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Baseline::parse("panic a.rs").is_err());
        assert!(Baseline::parse("bogus a.rs 3").is_err());
        assert!(Baseline::parse("panic a.rs three").is_err());
        assert!(Baseline::parse("# comment\n\npanic a.rs 3\n").is_ok());
    }

    #[test]
    fn under_budget_is_baselined() {
        let b = Baseline::parse("panic a.rs 2\n").expect("parse");
        let (reported, baselined) = b.apply(vec![
            diag(LintId::Panic, "a.rs", 1),
            diag(LintId::Panic, "a.rs", 9),
        ]);
        assert!(reported.is_empty());
        assert_eq!(baselined.len(), 2);
    }

    #[test]
    fn over_budget_reports_the_whole_group_plus_note() {
        let b = Baseline::parse("panic a.rs 1\n").expect("parse");
        let (reported, baselined) = b.apply(vec![
            diag(LintId::Panic, "a.rs", 1),
            diag(LintId::Panic, "a.rs", 9),
        ]);
        assert!(baselined.is_empty());
        assert_eq!(reported.len(), 3, "two findings plus the budget note");
        assert!(reported.iter().any(|d| d.message.contains("exceed")));
    }

    #[test]
    fn budget_is_per_lint_and_file() {
        let b = Baseline::parse("panic a.rs 1\n").expect("parse");
        let (reported, baselined) = b.apply(vec![
            diag(LintId::Panic, "a.rs", 1),
            diag(LintId::Determinism, "a.rs", 2),
            diag(LintId::Panic, "b.rs", 3),
        ]);
        assert_eq!(baselined.len(), 1);
        assert_eq!(reported.len(), 2);
    }

    #[test]
    fn render_round_trips_through_parse() {
        let rendered = Baseline::render(&[
            diag(LintId::Panic, "b.rs", 3),
            diag(LintId::Panic, "a.rs", 1),
            diag(LintId::Panic, "a.rs", 2),
            diag(LintId::Determinism, "a.rs", 4),
        ]);
        let parsed = Baseline::parse(&rendered).expect("parse rendered");
        assert_eq!(parsed.len(), 3);
        let (reported, baselined) = parsed.apply(vec![
            diag(LintId::Panic, "a.rs", 10),
            diag(LintId::Panic, "a.rs", 20),
        ]);
        assert!(reported.is_empty());
        assert_eq!(baselined.len(), 2);
    }
}
