//! The cross-crate call graph and hot-path reachability.
//!
//! Functions parsed by [`parse`] become nodes; call sites
//! become edges under *path-suffix resolution*: a call resolves to every
//! workspace function whose name matches its last path segment, filtered
//! by the qualifier when one is present (`Type::name`, `module::name`,
//! `ccdem_crate::name`, `Self::name`) and by the caller crate's declared
//! Cargo dependencies — a `core` function cannot call into
//! `experiments`, because nothing in `core` can name it. Method calls
//! and trait dispatch resolve to *every* function with the name
//! (conservative over-approximation), so reachability can only err
//! toward marking too much code hot.
//!
//! The roots are the decision-path entry points the ROADMAP's
//! governor-as-a-library item wants embeddable: everything reachable
//! from them must be allocation-free and panic-free (DESIGN.md §10).

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{self, FnItem};
use crate::source::SourceFile;

/// The declared hot-path roots, as `(type, fn)` pairs: the governor's
/// control tick, the meter's per-frame observation, the tiled sampler
/// compare, the refresh controller's switch path, and compositor
/// compose.
pub const HOT_PATH_ROOTS: &[(&str, &str)] = &[
    ("Governor", "decide"),
    ("Governor", "on_framebuffer_update"),
    ("Governor", "on_touch"),
    ("ContentRateMeter", "observe"),
    ("ContentRateMeter", "observe_damaged"),
    ("GridSampler", "compare_and_capture_tiled"),
    ("RefreshController", "request"),
    ("RefreshController", "poll"),
    ("SurfaceFlinger", "compose"),
];

/// The built graph: every parsed function plus the set reachable from
/// the hot-path roots.
#[derive(Debug)]
pub struct CallGraph {
    fns: Vec<FnItem>,
    /// For each function, the label of a root it is reachable from
    /// (`None` when cold). One witness is enough for diagnostics.
    witness: Vec<Option<String>>,
    /// Per-file line intervals of reachable functions, for `hot()`.
    hot_spans: BTreeMap<String, Vec<(u32, u32, usize)>>,
}

impl CallGraph {
    /// Parses `files` and computes reachability from `roots` under the
    /// crate dependency relation `deps` (direct dependencies per crate;
    /// the closure is taken here).
    pub fn build<'a>(
        files: impl IntoIterator<Item = &'a SourceFile>,
        deps: &BTreeMap<String, BTreeSet<String>>,
        roots: &[(&str, &str)],
    ) -> CallGraph {
        let mut fns = Vec::new();
        for file in files {
            fns.extend(parse::parse(file));
        }
        let deps = transitive(deps);

        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if !f.is_test {
                by_name.entry(f.name.as_str()).or_default().push(i);
            }
        }

        let mut witness: Vec<Option<String>> = vec![None; fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &(ty, name) in roots {
            for (i, f) in fns.iter().enumerate() {
                if f.name == name && f.type_name.as_deref() == Some(ty) && !f.is_test {
                    if let Some(w) = witness.get_mut(i) {
                        if w.is_none() {
                            *w = Some(format!("{ty}::{name}"));
                            queue.push(i);
                        }
                    }
                }
            }
        }
        while let Some(i) = queue.pop() {
            let Some(caller) = fns.get(i) else { continue };
            let label = witness.get(i).cloned().flatten().unwrap_or_default();
            for call in &caller.calls {
                let Some(cands) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                for &j in cands {
                    if witness.get(j).is_none_or(|w| w.is_some()) {
                        continue;
                    }
                    let Some(callee) = fns.get(j) else { continue };
                    if !dep_ok(&deps, &caller.crate_name, &callee.crate_name) {
                        continue;
                    }
                    let qualifier_ok = match call.qualifier.as_deref() {
                        None => true,
                        Some("Self") => callee.type_name == caller.type_name,
                        Some("self") | Some("crate") | Some("super") => {
                            callee.crate_name == caller.crate_name
                        }
                        Some(q) => {
                            callee.type_name.as_deref() == Some(q)
                                || callee.module.last().map(String::as_str) == Some(q)
                                || crate_matches(q, &callee.crate_name)
                        }
                    };
                    if !qualifier_ok {
                        continue;
                    }
                    if let Some(w) = witness.get_mut(j) {
                        *w = Some(label.clone());
                        queue.push(j);
                    }
                }
            }
        }

        let mut hot_spans: BTreeMap<String, Vec<(u32, u32, usize)>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if witness.get(i).is_some_and(Option::is_some) {
                hot_spans
                    .entry(f.file.clone())
                    .or_default()
                    .push((f.start_line, f.end_line, i));
            }
        }
        CallGraph {
            fns,
            witness,
            hot_spans,
        }
    }

    /// When `file:line` lies inside a function reachable from a root,
    /// the witness root's label (`"Governor::decide"`).
    pub fn hot(&self, file: &str, line: u32) -> Option<&str> {
        let spans = self.hot_spans.get(file)?;
        for &(lo, hi, i) in spans {
            if (lo..=hi).contains(&line) {
                return self.witness.get(i).and_then(|w| w.as_deref());
            }
        }
        None
    }

    /// Number of parsed functions.
    pub fn fn_count(&self) -> usize {
        self.fns.len()
    }

    /// Number of functions reachable from the roots.
    pub fn reachable_count(&self) -> usize {
        self.witness.iter().filter(|w| w.is_some()).count()
    }

    /// The reachable functions' qualified names, sorted (for tests and
    /// `--stats`-style introspection).
    pub fn reachable_names(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .fns
            .iter()
            .zip(&self.witness)
            .filter(|(_, w)| w.is_some())
            .map(|(f, _)| f.qualified_name())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Whether `caller_crate` may call into `callee_crate`: same crate, or
/// a (transitive) Cargo dependency.
fn dep_ok(
    deps: &BTreeMap<String, BTreeSet<String>>,
    caller_crate: &str,
    callee_crate: &str,
) -> bool {
    caller_crate == callee_crate
        || deps
            .get(caller_crate)
            .is_some_and(|d| d.contains(callee_crate))
}

/// Whether path qualifier `q` names crate `crate_name` (`ccdem_obs::f()`
/// → crate `obs`).
fn crate_matches(q: &str, crate_name: &str) -> bool {
    q == crate_name
        || q.strip_prefix("ccdem_")
            .is_some_and(|rest| rest == crate_name)
}

/// The transitive closure of a direct-dependency map.
fn transitive(direct: &BTreeMap<String, BTreeSet<String>>) -> BTreeMap<String, BTreeSet<String>> {
    let mut out = direct.clone();
    loop {
        let mut grew = false;
        let snapshot = out.clone();
        for set in out.values_mut() {
            let mut add = BTreeSet::new();
            for dep in set.iter() {
                if let Some(indirect) = snapshot.get(dep) {
                    for d in indirect {
                        if !set.contains(d) {
                            add.insert(d.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                grew = true;
                set.extend(add);
            }
        }
        if !grew {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn source(path: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile::new(path.into(), crate_name.into(), lex(src).expect("lex"))
    }

    fn deps(pairs: &[(&str, &[&str])]) -> BTreeMap<String, BTreeSet<String>> {
        pairs
            .iter()
            .map(|(k, vs)| {
                (
                    k.to_string(),
                    vs.iter().map(|v| v.to_string()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn reachability_crosses_crates_and_cycles() {
        let a = source(
            "crates/a/src/lib.rs",
            "a",
            "pub struct Root;\nimpl Root {\n    pub fn go(&self) { helper(); }\n}\n\
             fn helper() { ccdem_b::leaf(); helper(); }\n",
        );
        let b = source(
            "crates/b/src/lib.rs",
            "b",
            "pub fn leaf() { cycle_back(); }\npub fn cycle_back() { leaf(); }\npub fn cold() {}\n",
        );
        let graph = CallGraph::build(
            [&a, &b],
            &deps(&[("a", &["b"])]),
            &[("Root", "go")],
        );
        assert_eq!(
            graph.reachable_names(),
            vec!["Root::go", "cycle_back", "helper", "leaf"]
        );
        assert!(graph.hot("crates/b/src/lib.rs", 1).is_some());
        assert!(graph.hot("crates/b/src/lib.rs", 3).is_none(), "cold() stays cold");
    }

    #[test]
    fn dependency_direction_gates_resolution() {
        // `b` calls a function whose name also exists in `a`, but `b`
        // does not depend on `a`, so the edge must not resolve.
        let a = source("crates/a/src/lib.rs", "a", "pub fn shared() { secret(); }\nfn secret() {}\n");
        let b = source(
            "crates/b/src/lib.rs",
            "b",
            "pub struct Root;\nimpl Root {\n    pub fn go(&self) { shared(); }\n}\n",
        );
        let graph = CallGraph::build([&a, &b], &deps(&[]), &[("Root", "go")]);
        assert_eq!(graph.reachable_names(), vec!["Root::go"]);
    }

    #[test]
    fn trait_methods_over_approximate_to_every_impl() {
        let src = source(
            "crates/a/src/lib.rs",
            "a",
            "pub struct Root { m: Box<dyn Mapper> }\n\
             impl Root {\n    pub fn go(&self) { self.m.map_it(); }\n}\n\
             pub trait Mapper { fn map_it(&self); }\n\
             pub struct A;\nimpl Mapper for A {\n    fn map_it(&self) { a_only(); }\n}\n\
             pub struct B;\nimpl Mapper for B {\n    fn map_it(&self) { b_only(); }\n}\n\
             fn a_only() {}\nfn b_only() {}\n",
        );
        let graph = CallGraph::build([&src], &deps(&[]), &[("Root", "go")]);
        let names = graph.reachable_names();
        assert!(names.contains(&"A::map_it".to_string()), "{names:?}");
        assert!(names.contains(&"B::map_it".to_string()), "{names:?}");
        assert!(names.contains(&"a_only".to_string()), "{names:?}");
        assert!(names.contains(&"b_only".to_string()), "{names:?}");
    }

    #[test]
    fn closure_bodies_count_for_the_enclosing_fn() {
        let src = source(
            "crates/a/src/lib.rs",
            "a",
            "pub struct Root;\nimpl Root {\n    pub fn go(&self) {\n        \
             with(|x| inner_leaf(x));\n    }\n}\n\
             fn with<F: Fn(u32)>(f: F) { f(1) }\nfn inner_leaf(_x: u32) {}\n",
        );
        let graph = CallGraph::build([&src], &deps(&[]), &[("Root", "go")]);
        let names = graph.reachable_names();
        assert!(names.contains(&"inner_leaf".to_string()), "{names:?}");
        assert!(names.contains(&"with".to_string()), "{names:?}");
    }

    #[test]
    fn qualifier_filters_same_name_methods() {
        let src = source(
            "crates/a/src/lib.rs",
            "a",
            "pub struct Root;\nimpl Root {\n    pub fn go(&self) { Right::make(); }\n}\n\
             pub struct Right;\nimpl Right {\n    pub fn make() {}\n}\n\
             pub struct Wrong;\nimpl Wrong {\n    pub fn make() {}\n}\n",
        );
        let graph = CallGraph::build([&src], &deps(&[]), &[("Root", "go")]);
        assert_eq!(graph.reachable_names(), vec!["Right::make", "Root::go"]);
    }

    #[test]
    fn test_functions_are_excluded_from_the_graph() {
        let src = source(
            "crates/a/src/lib.rs",
            "a",
            "pub struct Root;\nimpl Root {\n    pub fn go(&self) { helper(); }\n}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { super::forbidden(); }\n}\n\
             pub fn forbidden() {}\n",
        );
        let graph = CallGraph::build([&src], &deps(&[]), &[("Root", "go")]);
        assert_eq!(graph.reachable_names(), vec!["Root::go"], "test helpers resolve nowhere");
    }

    #[test]
    fn hot_covers_whole_span_inclusive() {
        let src = source(
            "crates/a/src/lib.rs",
            "a",
            "pub struct Root;\nimpl Root {\n    pub fn go(&self) {\n        work();\n    }\n}\n",
        );
        let graph = CallGraph::build([&src], &deps(&[]), &[("Root", "go")]);
        assert!(graph.hot("crates/a/src/lib.rs", 3).is_some());
        assert!(graph.hot("crates/a/src/lib.rs", 4).is_some());
        assert!(graph.hot("crates/a/src/lib.rs", 5).is_some());
        assert!(graph.hot("crates/a/src/lib.rs", 2).is_none());
        assert_eq!(graph.hot("crates/a/src/lib.rs", 4), Some("Root::go"));
    }
}
