//! The obs-taxonomy lint.
//!
//! DESIGN.md §8 documents the full event and metric taxonomy as two
//! machine-readable tables (one name per row, backticked, in the first
//! column). This lint closes the loop in both directions:
//!
//! * **emitted ⇒ documented** — every event-name / metric-name string
//!   literal passed to `Obs::emit`, `Obs::span`, `Event::new`,
//!   `obs_event!`, or the registry constructors (`counter` / `gauge` /
//!   `histogram` / `sketch`) must appear in the table; an undocumented
//!   name is flagged at its call site.
//! * **documented ⇒ emitted** — every name in the table must be emitted
//!   somewhere; a stale row is flagged at its DESIGN.md line.
//!
//! Names built at runtime (non-literal first argument) are invisible to
//! the lint — the workspace deliberately has none.

use crate::diag::{Diagnostic, LintId};
use crate::source::SourceFile;

/// Crates never scanned for emissions: the shims and bench harness are
/// out of telemetry scope, and the lint itself matches on these method
/// names. The `obs` framework crate *is* scanned — it registers its own
/// `obs.events_dropped` / `obs.io_errors` sink-health counters, which
/// must stay documented like any other metric (its name parameters and
/// doc/test literals don't trip the lint: parameters aren't literals,
/// and doc comments lex as single tokens).
pub const SCAN_EXEMPT_CRATES: [&str; 3] = ["proptest", "criterion", "lint"];

/// A name used at a call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Emission {
    /// The event or metric name.
    pub name: String,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line of the literal.
    pub line: u32,
    /// Whether this is a metric (registry) name rather than an event.
    pub metric: bool,
}

/// Collects every event/metric name literal in one file.
pub fn collect(file: &SourceFile, out: &mut Vec<Emission>) {
    if SCAN_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let tokens = &file.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if file.is_test_line(token.line) {
            continue;
        }
        let Some(name) = token.tok.ident() else {
            continue;
        };
        let (event_method, metric_method) = match name {
            "emit" | "span" => (true, false),
            "counter" | "gauge" | "histogram" | "sketch" => (false, true),
            "new" | "obs_event" => (false, false),
            _ => continue,
        };
        // The literal argument, if the call shape matches.
        let emission = if event_method || metric_method {
            // `.emit("…"` / `.counter("…"` — must be a method call.
            let dotted = i >= 1 && tokens.get(i - 1).is_some_and(|t| t.tok.is_punct('.'));
            let lit = tokens.get(i + 1).filter(|t| t.tok.is_punct('(')).and_then(|_| {
                tokens.get(i + 2)
            });
            match (dotted, lit) {
                (true, Some(lit)) => lit.tok.str_value().map(|value| (value, lit.line, metric_method)),
                _ => None,
            }
        } else if name == "new" {
            // `Event::new("…"` — qualified by the `Event` path.
            let qualified = i >= 3
                && tokens.get(i - 1).is_some_and(|t| t.tok.is_punct(':'))
                && tokens.get(i - 2).is_some_and(|t| t.tok.is_punct(':'))
                && tokens.get(i - 3).is_some_and(|t| t.tok.is_ident("Event"));
            let lit = tokens.get(i + 1).filter(|t| t.tok.is_punct('(')).and_then(|_| {
                tokens.get(i + 2)
            });
            match (qualified, lit) {
                (true, Some(lit)) => lit.tok.str_value().map(|value| (value, lit.line, false)),
                _ => None,
            }
        } else {
            // `obs_event!(obs, now, "…", …)` — the first string literal
            // in the macro arguments is the event name.
            if !tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('!')) {
                continue;
            }
            tokens
                .get(i + 2..)
                .unwrap_or(&[])
                .iter()
                .take_while(|t| !t.tok.is_punct(')'))
                .find_map(|t| t.tok.str_value().map(|value| (value, t.line, false)))
        };
        if let Some((value, line, metric)) = emission {
            out.push(Emission {
                name: value.to_string(),
                file: file.path.clone(),
                line,
                metric,
            });
        }
    }
}

/// A documented name with its DESIGN.md line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocName {
    /// The name.
    pub name: String,
    /// 1-based DESIGN.md line of its table row.
    pub line: u32,
    /// From the metric table rather than the event table.
    pub metric: bool,
}

/// Parses the §8 taxonomy tables out of the DESIGN.md text: every table
/// row under the `### Event taxonomy` / `### Metric taxonomy` headings
/// whose first cell is a single backticked name.
pub fn documented_names(design: &str) -> Vec<DocName> {
    let mut out = Vec::new();
    let mut section: Option<bool> = None; // Some(metric?)
    for (i, raw) in design.lines().enumerate() {
        let line = (i + 1) as u32;
        let trimmed = raw.trim();
        if trimmed.starts_with("### ") {
            section = match trimmed {
                "### Event taxonomy" => Some(false),
                "### Metric taxonomy" => Some(true),
                _ => None,
            };
            continue;
        }
        if trimmed.starts_with("## ") {
            section = None;
            continue;
        }
        let Some(metric) = section else {
            continue;
        };
        // A data row: `| `name` | … |` — skip the header and rule rows.
        let Some(first_cell) = trimmed.strip_prefix('|').and_then(|r| r.split('|').next()) else {
            continue;
        };
        let cell = first_cell.trim();
        let Some(name) = cell
            .strip_prefix('`')
            .and_then(|c| c.strip_suffix('`'))
        else {
            continue;
        };
        if name.is_empty() || name.contains('`') {
            continue;
        }
        out.push(DocName {
            name: name.to_string(),
            line,
            metric,
        });
    }
    out
}

/// Cross-checks emissions against the documented taxonomy.
pub fn check(design: &str, design_path: &str, emissions: &[Emission], out: &mut Vec<Diagnostic>) {
    let documented = documented_names(design);
    if documented.is_empty() {
        out.push(Diagnostic::new(
            LintId::ObsTaxonomy,
            design_path,
            0,
            "no taxonomy tables found under `### Event taxonomy` / `### Metric taxonomy` \
             in DESIGN.md §8",
        ));
        return;
    }
    // Emitted but undocumented — flagged at the call site. The event
    // and metric namespaces are checked jointly: a name documented in
    // either table is known (the registry and the event stream share
    // the dotted naming scheme).
    for emission in emissions {
        if documented.iter().any(|d| d.name == emission.name) {
            continue;
        }
        let kind = if emission.metric { "metric" } else { "event" };
        out.push(Diagnostic::new(
            LintId::ObsTaxonomy,
            emission.file.clone(),
            emission.line,
            format!(
                "{kind} name \"{}\" is emitted but not documented in the DESIGN.md §8 \
                 taxonomy tables",
                emission.name
            ),
        ));
    }
    // Documented but never emitted — flagged at the DESIGN.md row.
    for doc in &documented {
        if emissions.iter().any(|e| e.name == doc.name) {
            continue;
        }
        let kind = if doc.metric { "metric" } else { "event" };
        out.push(Diagnostic::new(
            LintId::ObsTaxonomy,
            design_path,
            doc.line,
            format!(
                "{kind} name \"{}\" is documented in the §8 taxonomy but never emitted \
                 by the workspace",
                doc.name
            ),
        ));
    }
}
