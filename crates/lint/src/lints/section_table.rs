//! The section-table lint: a static proof of Eq. 1 (paper §3.2).
//!
//! The section table is the paper's core contribution — thresholds at
//! the median of adjacent refresh rates so the selected rate always
//! leaves headroom above the section's content rates. This lint
//! re-derives the table from the device ladder and checks the workspace
//! against it, entirely at the token level:
//!
//! 1. the Galaxy S3 ladder is read out of `RefreshRateSet::galaxy_s3()`
//!    (`crates/panel/src/refresh.rs`) as the `HZ_nn` constants it lists;
//! 2. Eq. 1 thresholds `θ_i = (r_{i-1} + r_i) / 2` (virtual `r_0 = 0`)
//!    must be strictly increasing;
//! 3. headroom: `θ_i < r_i` for every section — the invariant that lets
//!    the governor climb back up under V-Sync clipping;
//! 4. the ladder is capped at 60 Hz (Android's fixed default must be
//!    reachable);
//! 5. the Fig. 5 table in the `crates/core/src/section.rs` module docs
//!    must row-for-row equal the derived sections (the last row's upper
//!    bound is the maximum rate itself);
//! 6. `SectionTable::new` must actually contain the `/ 2` median
//!    construction Eq. 1 prescribes.

use crate::diag::{Diagnostic, LintId};
use crate::lexer::Tok;
use crate::source::{matching, SourceFile};

/// Where the device ladder lives.
pub const REFRESH_PATH: &str = "crates/panel/src/refresh.rs";
/// Where the section table and its Fig. 5 doc table live.
pub const SECTION_PATH: &str = "crates/core/src/section.rs";

/// Runs the section-table lint given the two anchor files (either may be
/// absent, which is itself a violation — the invariant has nowhere to
/// hold).
pub fn check(refresh: Option<&SourceFile>, section: Option<&SourceFile>, out: &mut Vec<Diagnostic>) {
    let Some(refresh) = refresh else {
        out.push(Diagnostic::new(
            LintId::SectionTable,
            REFRESH_PATH,
            0,
            "file not found: the device refresh ladder is the lint's ground truth",
        ));
        return;
    };
    let Some(section) = section else {
        out.push(Diagnostic::new(
            LintId::SectionTable,
            SECTION_PATH,
            0,
            "file not found: the section table implements Eq. 1",
        ));
        return;
    };
    let Some((rates, ladder_line)) = extract_ladder(refresh, out) else {
        return;
    };
    let thresholds = eq1_thresholds(&rates);

    // Monotonicity: strictly increasing thresholds (Eq. 1 gives this for
    // any strictly increasing ladder; a duplicated rung breaks it).
    for pair in thresholds.windows(2) {
        if let [a, b] = pair {
            if a >= b {
                out.push(Diagnostic::new(
                    LintId::SectionTable,
                    REFRESH_PATH,
                    ladder_line,
                    format!(
                        "Eq. 1 thresholds are not strictly increasing: θ = {a} then {b} \
                         (ladder {rates:?})"
                    ),
                ));
            }
        }
    }
    // Headroom: θ_i < r_i, so every in-section content rate is strictly
    // below its selected refresh rate.
    for (theta, hz) in thresholds.iter().zip(&rates) {
        if *theta >= f64::from(*hz) {
            out.push(Diagnostic::new(
                LintId::SectionTable,
                REFRESH_PATH,
                ladder_line,
                format!(
                    "headroom invariant violated: threshold {theta} is not below its \
                     refresh rate {hz} Hz — the governor could never climb out of this \
                     section under V-Sync"
                ),
            ));
        }
    }
    // The 60 Hz cap: Android's stock rate must top the ladder.
    if rates.last() != Some(&60) {
        out.push(Diagnostic::new(
            LintId::SectionTable,
            REFRESH_PATH,
            ladder_line,
            format!(
                "ladder {rates:?} is not capped at 60 Hz: the stock Android rate must be \
                 the maximum (paper §3.2)"
            ),
        ));
    }

    check_doc_table(section, &rates, &thresholds, out);
    check_median_construction(section, out);
}

/// The Eq. 1 thresholds for a ladder, with the virtual 0 Hz rate below
/// the floor: `θ_i = (r_{i-1} + r_i) / 2`.
pub fn eq1_thresholds(rates: &[u32]) -> Vec<f64> {
    let mut out = Vec::with_capacity(rates.len());
    let mut prev = 0.0;
    for &hz in rates {
        let hz = f64::from(hz);
        out.push((prev + hz) / 2.0);
        prev = hz;
    }
    out
}

/// Extracts the `HZ_nn` rungs listed inside `fn galaxy_s3`, ascending,
/// plus the line the function starts on (for diagnostics).
fn extract_ladder(refresh: &SourceFile, out: &mut Vec<Diagnostic>) -> Option<(Vec<u32>, u32)> {
    let tokens = &refresh.tokens;
    let mut ladder_line = 0;
    let mut body = None;
    for (i, token) in tokens.iter().enumerate() {
        if !token.tok.is_ident("galaxy_s3") {
            continue;
        }
        if !(i >= 1 && tokens.get(i - 1).is_some_and(|t| t.tok.is_ident("fn"))) {
            continue;
        }
        ladder_line = token.line;
        // The function body is the first `{` after the signature.
        let open = tokens
            .iter()
            .enumerate()
            .skip(i)
            .find(|(_, t)| t.tok.is_punct('{'))
            .map(|(j, _)| j)?;
        let close = matching(tokens, open, '{', '}')?;
        body = tokens.get(open + 1..close);
        break;
    }
    let Some(body) = body else {
        out.push(Diagnostic::new(
            LintId::SectionTable,
            REFRESH_PATH,
            0,
            "`fn galaxy_s3` not found: the Galaxy S3 ladder is the lint's ground truth",
        ));
        return None;
    };
    let mut rates: Vec<u32> = body
        .iter()
        .filter_map(|t| t.tok.ident())
        .filter_map(|name| name.strip_prefix("HZ_"))
        .filter_map(|hz| hz.parse().ok())
        .collect();
    rates.sort_unstable();
    rates.dedup();
    if rates.is_empty() {
        out.push(Diagnostic::new(
            LintId::SectionTable,
            REFRESH_PATH,
            ladder_line,
            "`fn galaxy_s3` lists no `HZ_nn` constants; cannot derive the section table",
        ));
        return None;
    }
    Some((rates, ladder_line))
}

/// A parsed `| lo – hi | nn Hz |` doc-table row.
#[derive(Debug, Clone, PartialEq)]
pub struct DocRow {
    /// Section lower bound (fps).
    pub lo: f64,
    /// Section upper bound (fps).
    pub hi: f64,
    /// Selected refresh rate (Hz).
    pub hz: u32,
    /// 1-based source line of the row.
    pub line: u32,
}

/// Parses Fig. 5 rows out of a file's comments. A row is any comment
/// line shaped `| <lo> – <hi> | <hz> Hz |` (en-dash or hyphen).
pub fn doc_rows(file: &SourceFile) -> Vec<DocRow> {
    let mut rows = Vec::new();
    for comment in &file.comments {
        for (offset, text) in comment.text.lines().enumerate() {
            let line = comment.line + offset as u32;
            if let Some(row) = parse_row(text, line) {
                rows.push(row);
            }
        }
    }
    rows
}

fn parse_row(text: &str, line: u32) -> Option<DocRow> {
    // Strip the comment leader (`//!`, `//`, `/**`, `*`, …) down to the
    // first `|`.
    let cells: Vec<&str> = text
        .get(text.find('|')?..)?
        .split('|')
        .map(str::trim)
        .filter(|c| !c.is_empty())
        .collect();
    let [range, rate] = cells.as_slice() else {
        return None;
    };
    let (lo, hi) = range.split_once('–').or_else(|| range.split_once('-'))?;
    let lo: f64 = lo.trim().parse().ok()?;
    let hi: f64 = hi.trim().parse().ok()?;
    let hz: u32 = rate.strip_suffix("Hz")?.trim().parse().ok()?;
    Some(DocRow { lo, hi, hz, line })
}

/// Checks the module-doc Fig. 5 table against the derived sections.
fn check_doc_table(
    section: &SourceFile,
    rates: &[u32],
    thresholds: &[f64],
    out: &mut Vec<Diagnostic>,
) {
    let rows = doc_rows(section);
    if rows.len() != rates.len() {
        out.push(Diagnostic::new(
            LintId::SectionTable,
            SECTION_PATH,
            rows.first().map_or(0, |r| r.line),
            format!(
                "module-doc Fig. 5 table has {} rows but the ladder has {} rates",
                rows.len(),
                rates.len()
            ),
        ));
        return;
    }
    let mut lower = 0.0;
    for (i, row) in rows.iter().enumerate() {
        // The last section's upper bound is the max rate itself: content
        // rates cannot exceed it under V-Sync.
        let upper = if i + 1 < rates.len() {
            thresholds.get(i).copied().unwrap_or(f64::NAN)
        } else {
            rates.get(i).copied().map_or(f64::NAN, f64::from)
        };
        let expect_hz = rates.get(i).copied().unwrap_or(0);
        if row.lo != lower || row.hi != upper || row.hz != expect_hz {
            out.push(Diagnostic::new(
                LintId::SectionTable,
                SECTION_PATH,
                row.line,
                format!(
                    "Fig. 5 row {} reads `{} – {} | {} Hz` but Eq. 1 derives \
                     `{} – {} | {} Hz`",
                    i + 1,
                    row.lo,
                    row.hi,
                    row.hz,
                    lower,
                    upper,
                    expect_hz
                ),
            ));
        }
        lower = upper;
    }
}

/// Checks that `SectionTable::new` still contains the Eq. 1 median
/// construction: a division by the literal `2.0` (or `2`) inside the
/// first `fn new` body.
fn check_median_construction(section: &SourceFile, out: &mut Vec<Diagnostic>) {
    let tokens = &section.tokens;
    let mut first_new_line = None;
    for (i, token) in tokens.iter().enumerate() {
        if !token.tok.is_ident("new") {
            continue;
        }
        if !(i >= 1 && tokens.get(i - 1).is_some_and(|t| t.tok.is_ident("fn"))) {
            continue;
        }
        first_new_line.get_or_insert(token.line);
        let Some(open) = tokens
            .iter()
            .enumerate()
            .skip(i)
            .find(|(_, t)| t.tok.is_punct('{'))
            .map(|(j, _)| j)
        else {
            continue;
        };
        let Some(close) = matching(tokens, open, '{', '}') else {
            continue;
        };
        let body = tokens.get(open + 1..close).unwrap_or(&[]);
        let has_median = body.windows(2).any(|w| {
            matches!(w, [a, b] if a.tok.is_punct('/')
                && matches!(&b.tok, Tok::Num(n) if n == "2.0" || n == "2"))
        });
        if has_median {
            return;
        }
    }
    out.push(Diagnostic::new(
        LintId::SectionTable,
        SECTION_PATH,
        first_new_line.unwrap_or(0),
        "no `fn new` in this file divides by 2: `SectionTable::new` must implement the \
         Eq. 1 median construction, `θ_i = (r_{i-1} + r_i) / 2`",
    ));
}
