//! `atomics-ordering` — every memory ordering in `crates/obs` must be
//! justified in a comment.
//!
//! The telemetry layer is the only concurrent code whose correctness
//! rests on atomic memory orderings (registry counters, sink buffers,
//! sketch bins). An `Ordering::Relaxed` that is actually fine for a
//! monotone counter is indistinguishable, at the call site, from one
//! that silently drops a needed happens-before edge — unless the author
//! wrote down *why*. This lint requires every `Ordering::*` argument in
//! `crates/obs` to carry a justification: a comment on the same line,
//! or a comment block ending on the line directly above, that mentions
//! the ordering vocabulary (`ordering`, `relaxed`, `acquire`,
//! `release`, `seqcst`, `atomic`, or `happens-before`). A bare
//! `SeqCst` is additionally flagged as an unjustified default even
//! though it is the strongest ordering: if sequential consistency is
//! truly required, the comment must say `SeqCst` and name the reason;
//! if it is not, the site should state the weaker ordering it needs.

use crate::diag::{Diagnostic, LintId};
use crate::source::SourceFile;

/// Words a justification comment must touch to count.
const VOCAB: &[&str] = &[
    "ordering", "relaxed", "acquire", "release", "acqrel", "seqcst", "atomic", "happens-before",
];

/// Flags unjustified `Ordering::*` arguments in `crates/obs`.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.crate_name != "obs" {
        return;
    }
    let toks = &file.tokens;
    for (k, token) in toks.iter().enumerate() {
        if !token.tok.is_ident("Ordering") {
            continue;
        }
        let path_sep = toks.get(k + 1).is_some_and(|t| t.tok.is_punct(':'))
            && toks.get(k + 2).is_some_and(|t| t.tok.is_punct(':'));
        if !path_sep {
            continue;
        }
        let Some(ord) = toks.get(k + 3).and_then(|t| t.tok.ident()) else {
            continue;
        };
        let line = token.line;
        if file.is_test_line(line) {
            continue;
        }
        let justification = justification_for(file, line);
        let justified = justification.is_some_and(|text| {
            let lower = text.to_lowercase();
            let vocab_ok = VOCAB.iter().any(|w| lower.contains(w));
            // SeqCst must be named explicitly: a generic "atomic
            // counter" note does not explain needing the strongest
            // ordering.
            vocab_ok && (ord != "SeqCst" || lower.contains("seqcst"))
        });
        if !justified {
            let hint = if ord == "SeqCst" {
                "bare SeqCst is an unjustified default; name the required \
                 happens-before edge in a comment or use the weakest \
                 sufficient ordering"
            } else {
                "add a same-line or preceding comment explaining why this \
                 ordering is sufficient"
            };
            out.push(Diagnostic::new(
                LintId::AtomicsOrdering,
                file.path.clone(),
                line,
                format!("`Ordering::{ord}` without a written justification; {hint}"),
            ));
        }
    }
}

/// The text of a comment covering `line`: on the line itself, or a
/// comment block whose last line is `line - 1` (walking the block
/// upward so multi-line justifications concatenate).
fn justification_for(file: &SourceFile, line: u32) -> Option<String> {
    let mut parts: Vec<&str> = Vec::new();
    for c in &file.comments {
        if c.line <= line && line <= c.end_line {
            parts.push(&c.text);
        }
    }
    if parts.is_empty() {
        // A preceding block: comments ending exactly on line-1, plus
        // any directly stacked above them.
        let mut cursor = line;
        loop {
            let above: Vec<&str> = file
                .comments
                .iter()
                .filter(|c| c.end_line + 1 == cursor)
                .map(|c| c.text.as_str())
                .collect();
            if above.is_empty() {
                break;
            }
            let top = file
                .comments
                .iter()
                .filter(|c| c.end_line + 1 == cursor)
                .map(|c| c.line)
                .min()
                .unwrap_or(cursor);
            parts.splice(0..0, above);
            if top >= cursor {
                break;
            }
            cursor = top;
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(crate_name: &str, src: &str) -> Vec<(u32, String)> {
        let file = SourceFile::new(
            "crates/obs/src/registry.rs".into(),
            crate_name.into(),
            lex(src).expect("lex"),
        );
        let mut out = Vec::new();
        check(&file, &mut out);
        out.iter().map(|d| (d.line, d.message.clone())).collect()
    }

    #[test]
    fn bare_orderings_flag_and_comments_justify() {
        let src = "\
fn f(c: &AtomicU64) {\n\
    c.fetch_add(1, Ordering::Relaxed);\n\
    c.load(Ordering::Relaxed); // ordering: relaxed — monotone counter, no reader sync\n\
    // ordering: relaxed — snapshot tearing is acceptable for telemetry\n\
    c.store(0, Ordering::Relaxed);\n\
}\n";
        let hits = run("obs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, 2);
    }

    #[test]
    fn seqcst_needs_an_explicit_seqcst_reason() {
        let src = "\
fn f(c: &AtomicU64) {\n\
    c.store(1, Ordering::SeqCst); // ordering: relaxed would do\n\
    c.store(2, Ordering::SeqCst); // ordering: SeqCst — total order across flags observed by drain\n\
}\n";
        let hits = run("obs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, 2);
        assert!(hits[0].1.contains("SeqCst"));
    }

    #[test]
    fn unrelated_comments_do_not_count() {
        let src = "\
fn f(c: &AtomicU64) {\n\
    // bump the thing\n\
    c.fetch_add(1, Ordering::Relaxed);\n\
}\n";
        assert_eq!(run("obs", src).len(), 1);
    }

    #[test]
    fn multi_line_block_justifies() {
        let src = "\
fn f(c: &AtomicU64) {\n\
    // The counter is monotone and never read back on this thread;\n\
    // ordering: relaxed is sufficient.\n\
    c.fetch_add(1, Ordering::Relaxed);\n\
}\n";
        assert!(run("obs", src).is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        assert!(run("core", "fn f(c: &AtomicU64) { c.load(Ordering::SeqCst); }").is_empty());
    }
}
