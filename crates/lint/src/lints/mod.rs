//! The four lint families.

pub mod determinism;
pub mod panic;
pub mod section_table;
pub mod taxonomy;
