//! The lint families.

pub mod alloc_hot_path;
pub mod arith_cast;
pub mod atomics_ordering;
pub mod determinism;
pub mod panic;
pub mod section_table;
pub mod taxonomy;
