//! `alloc-hot-path` — no heap allocation reachable from a hot-path
//! root.
//!
//! The ROADMAP's governor-as-a-library item requires the decision path
//! (meter → section table → touch boost) to run allocation-free, so it
//! can embed in a real compositor's frame loop. This lint flags the
//! allocating constructors and adaptors — `Vec::new` /
//! `Vec::with_capacity` / `vec!` / `Box::new` / `String::…` /
//! `format!` / `.to_string()` / `.to_owned()` / `.to_vec()` /
//! `.collect()` — but only inside functions the
//! [`CallGraph`] proves reachable from a
//! hot-path root. Steady-state recycling paths (`PixelPool`,
//! `RunScratch`) justify their warm-up allocations with documented
//! `// ccdem-lint: allow(alloc-hot-path)` comments.
//!
//! `crates/obs` is exempt as a whole: the telemetry layer allocates by
//! design (owned event fields, JSONL buffers), and every allocating
//! path is behind an enabled-sink check — the embedded decision path
//! runs with `Obs::disabled()`, which short-circuits before any of it.
//! The contract is documented in DESIGN.md §10.

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, LintId};
use crate::source::SourceFile;

/// File prefixes exempt from the allocation lint (see module docs).
const EXEMPT_PREFIXES: &[&str] = &["crates/obs/src/"];

/// Types whose associated constructors allocate.
const ALLOC_TYPES: &[&str] = &["Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet"];

/// Allocating methods (called with `.name(` or `.name::<…>(`).
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "collect", "join"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Flags allocation inside hot-reachable functions of `file`.
pub fn check(file: &SourceFile, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    if EXEMPT_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
        return;
    }
    let toks = &file.tokens;
    for (k, token) in toks.iter().enumerate() {
        let line = token.line;
        if file.is_test_line(line) {
            continue;
        }
        let Some(root) = graph.hot(&file.path, line) else {
            continue;
        };
        // `Type::method(` for an allocating type.
        if let Some(ty) = token.tok.ident().filter(|t| ALLOC_TYPES.contains(t)) {
            let path_sep = toks.get(k + 1).is_some_and(|t| t.tok.is_punct(':'))
                && toks.get(k + 2).is_some_and(|t| t.tok.is_punct(':'));
            if path_sep {
                if let Some(m) = toks.get(k + 3).and_then(|t| t.tok.ident()) {
                    out.push(diag(file, line, &format!("{ty}::{m}"), root));
                    continue;
                }
            }
        }
        // `name!(` / `name![` / `name!{` for an allocating macro. The
        // open delimiter is required: `format != x` also lexes as
        // `format` `!` (the lexer splits `!=`), and that is not a call.
        if let Some(mac) = token.tok.ident().filter(|m| ALLOC_MACROS.contains(m)) {
            let bang = toks.get(k + 1).is_some_and(|t| t.tok.is_punct('!'));
            let delim = toks.get(k + 2).is_some_and(|t| {
                t.tok.is_punct('(') || t.tok.is_punct('[') || t.tok.is_punct('{')
            });
            if bang && delim {
                out.push(diag(file, line, &format!("{mac}!"), root));
                continue;
            }
        }
        // `.method(` / `.method::<…>(` for an allocating method.
        if token.tok.is_punct('.') {
            if let Some(m) = toks
                .get(k + 1)
                .and_then(|t| t.tok.ident())
                .filter(|m| ALLOC_METHODS.contains(m))
            {
                let called = toks.get(k + 2).is_some_and(|t| {
                    t.tok.is_punct('(') || t.tok.is_punct(':')
                });
                if called {
                    out.push(diag(file, line, &format!(".{m}()"), root));
                }
            }
        }
    }
}

fn diag(file: &SourceFile, line: u32, what: &str, root: &str) -> Diagnostic {
    let mut d = Diagnostic::new(
        LintId::AllocHotPath,
        file.path.clone(),
        line,
        format!(
            "{what} allocates on the hot path (reachable from {root}); \
             reuse a scratch buffer or hoist the allocation out of the \
             per-frame path"
        ),
    );
    d.hot = true;
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::lexer::lex;
    use std::collections::BTreeMap;

    fn run(path: &str, src: &str) -> Vec<(u32, String)> {
        let file = SourceFile::new(path.into(), "a".into(), lex(src).expect("lex"));
        let graph = CallGraph::build([&file], &BTreeMap::new(), &[("Root", "go")]);
        let mut out = Vec::new();
        check(&file, &graph, &mut out);
        out.retain(|d| !file.is_allowed(d.id, d.line));
        out.iter().map(|d| (d.line, d.message.clone())).collect()
    }

    const HOT_THEN_COLD: &str = "\
pub struct Root;\n\
impl Root {\n\
    pub fn go(&self) {\n\
        let v = Vec::new();\n\
        let s = format!(\"x\");\n\
        let b = Box::new(1);\n\
        let c: Vec<u32> = x.iter().collect();\n\
        let t = y.to_string();\n\
    }\n\
}\n\
pub fn cold() {\n\
    let v = vec![1, 2];\n\
    let s = String::new();\n\
}\n";

    #[test]
    fn flags_only_reachable_functions() {
        let hits = run("crates/a/src/lib.rs", HOT_THEN_COLD);
        let lines: Vec<u32> = hits.iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![4, 5, 6, 7, 8], "{hits:?}");
        assert!(hits[0].1.contains("Vec::new"));
        assert!(hits[0].1.contains("Root::go"));
    }

    #[test]
    fn obs_crate_is_exempt() {
        assert!(run("crates/obs/src/event.rs", HOT_THEN_COLD).is_empty());
    }

    #[test]
    fn documented_allow_suppresses_recycle_paths() {
        let src = "\
pub struct Root;\n\
impl Root {\n\
    pub fn go(&self) {\n\
        // ccdem-lint: allow(alloc-hot-path) — pool warm-up only\n\
        let v = Vec::with_capacity(64);\n\
    }\n\
}\n";
        assert!(run("crates/a/src/lib.rs", src).is_empty());
    }
}
