//! The panic-policy lint.
//!
//! Library code must not reserve the right to abort the process:
//! fallible operations return `Result`/`Option` to the caller, and the
//! only sanctioned panics are (a) documented contract violations behind
//! `assert!`-family macros (which carry a `# Panics` doc section and are
//! not flagged here) and (b) provably-unreachable cases carrying a
//! line-level `// ccdem-lint: allow(panic)` with the invariant spelled
//! out. The lint flags, in non-test library code:
//!
//! * `.unwrap()` — swallows the error message too;
//! * `.expect(…)` — acceptable only with an allow comment justifying
//!   why the failure is impossible;
//! * `panic!(…)`;
//! * index expressions `x[i]` — `get`/`get_mut` make the miss explicit.
//!   Full-range slicing `x[..]` cannot panic and is not flagged.

use crate::diag::{Diagnostic, LintId};
use crate::lexer::Tok;
use crate::source::{matching, SourceFile};

/// Crates exempt from the panic policy: the vendored `proptest` /
/// `criterion` shims (panicking is how a property-test or bench harness
/// reports failure) and the bench crate itself.
pub const EXEMPT_CRATES: [&str; 3] = ["proptest", "criterion", "bench"];

/// Keywords that can legally precede `[` without forming an index
/// expression (slice patterns, array types/literals after `=`, …).
const NON_INDEX_PRECEDERS: [&str; 15] = [
    "let", "for", "in", "if", "else", "match", "return", "mut", "ref", "box", "move", "as",
    "dyn", "where", "const",
];

/// Runs the panic-policy lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let tokens = &file.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if file.is_test_line(token.line) {
            continue;
        }
        match &token.tok {
            Tok::Ident(name) if name == "unwrap" => {
                // `.unwrap()` exactly — `unwrap_or(…)` is a different,
                // total method and lexes as a different identifier.
                let dotted = i >= 1 && tokens.get(i - 1).is_some_and(|t| t.tok.is_punct('.'));
                let called = tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('('))
                    && tokens.get(i + 2).is_some_and(|t| t.tok.is_punct(')'));
                if dotted && called {
                    out.push(Diagnostic::new(
                        LintId::Panic,
                        file.path.clone(),
                        token.line,
                        "`.unwrap()` in library code: propagate the error or document the \
                         invariant with `.expect(…)` plus `// ccdem-lint: allow(panic)`",
                    ));
                }
            }
            Tok::Ident(name) if name == "expect" => {
                let dotted = i >= 1 && tokens.get(i - 1).is_some_and(|t| t.tok.is_punct('.'));
                let called = tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('('));
                if dotted && called {
                    out.push(Diagnostic::new(
                        LintId::Panic,
                        file.path.clone(),
                        token.line,
                        "`.expect(…)` in library code: propagate the error, or justify the \
                         invariant with `// ccdem-lint: allow(panic)`",
                    ));
                }
            }
            Tok::Ident(name)
                if name == "panic"
                    && tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('!')) =>
            {
                out.push(Diagnostic::new(
                    LintId::Panic,
                    file.path.clone(),
                    token.line,
                    "`panic!` in library code: return an error instead",
                ));
            }
            Tok::Punct('[') if is_index_expression(tokens, i) => {
                out.push(Diagnostic::new(
                    LintId::Panic,
                    file.path.clone(),
                    token.line,
                    "index expression in library code can panic on a miss: use \
                     `get`/`get_mut`, or justify bounds with `// ccdem-lint: allow(panic)`",
                ));
            }
            _ => {}
        }
    }
}

/// Whether the `[` at `open_at` begins an index *expression* (`x[i]`)
/// rather than an array type/literal, slice pattern, or attribute.
/// Heuristic: the previous significant token must be something an index
/// can apply to — a non-keyword identifier, a close-paren, or a close
/// bracket — and the body must not be the full range `[..]` (which
/// cannot panic).
fn is_index_expression(tokens: &[crate::lexer::Token], open_at: usize) -> bool {
    let Some(prev_at) = open_at.checked_sub(1) else {
        return false;
    };
    let indexable = match tokens.get(prev_at).map(|t| &t.tok) {
        Some(Tok::Ident(name)) => !NON_INDEX_PRECEDERS.contains(&name.as_str()),
        Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
        _ => false,
    };
    if !indexable {
        return false;
    }
    // `x[..]` is RangeFull indexing: total, never panics.
    if let Some(close) = matching(tokens, open_at, '[', ']') {
        let body = tokens.get(open_at + 1..close).unwrap_or(&[]);
        if body.len() == 2 && body.iter().all(|t| t.tok.is_punct('.')) {
            return false;
        }
    }
    true
}
