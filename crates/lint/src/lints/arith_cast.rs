//! `arith-cast` — truncating casts and unchecked arithmetic in
//! fixed-point code.
//!
//! Three files do load-bearing fixed-point math: the log-linear bucket
//! arithmetic in `ccdem_obs::sketch`, the ×1000 fixed-point campaign
//! statistics in `experiments::campaign`, and the Eq. 1 threshold math
//! in `core::section`. In those files every `as` cast to an integer
//! type (silently truncating or saturating) and every unchecked binary
//! `+` / `*` (including `+=` / `*=`) must either be rewritten with
//! `From` / `checked_*` / `saturating_*`, or carry a documented
//! `// ccdem-lint: allow(arith-cast)` justification.
//!
//! Two shapes are deliberately not flagged: increments by the literal
//! `1` (counter bumps cannot meaningfully overflow a `u64` and have no
//! truncation risk), and operations with a float-literal operand
//! (float arithmetic saturates to ±inf instead of wrapping — the
//! section-table float math is governed by the `section-table` family).

use crate::diag::{Diagnostic, LintId};
use crate::lexer::Tok;
use crate::source::SourceFile;

/// The fixed-point files in scope.
pub const SCOPED_FILES: &[&str] = &[
    "crates/obs/src/sketch.rs",
    "crates/experiments/src/campaign.rs",
    "crates/core/src/section.rs",
];

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Identifiers that end a value expression (so a following `+`/`*` is
/// binary). Keywords are excluded via this being an allow-list shape:
/// any identifier counts *except* expression-introducing keywords.
fn ends_value(tok: &Tok) -> bool {
    match tok {
        Tok::Ident(id) => !matches!(
            id.as_str(),
            "return" | "if" | "else" | "match" | "in" | "as" | "let" | "mut" | "ref" | "move"
        ),
        Tok::Num(_) => true,
        Tok::Punct(')') | Tok::Punct(']') => true,
        _ => false,
    }
}

/// Tokens that can begin the right operand of a binary `+`/`*`.
fn begins_value(tok: &Tok) -> bool {
    match tok {
        // `impl Trait + Send` / `dyn Error + Sync` bounds are the one
        // ident-plus-ident shape that is not arithmetic.
        Tok::Ident(id) => !matches!(id.as_str(), "Send" | "Sync" | "Unpin"),
        Tok::Num(_) => true,
        Tok::Punct('(') => true,
        _ => false,
    }
}

fn is_float_literal(tok: &Tok) -> bool {
    matches!(tok, Tok::Num(n) if n.contains('.')
        || n.ends_with("f32")
        || n.ends_with("f64")
        || (!n.starts_with("0x") && n.contains(['e', 'E'])))
}

fn is_one(tok: &Tok) -> bool {
    matches!(tok, Tok::Num(n) if n == "1")
}

/// Flags truncating casts and unchecked `+`/`*` in the scoped files.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !SCOPED_FILES.contains(&file.path.as_str()) {
        return;
    }
    let toks = &file.tokens;
    for (k, token) in toks.iter().enumerate() {
        let line = token.line;
        if file.is_test_line(line) {
            continue;
        }
        // `expr as <int type>` — silently truncates (or saturates from
        // floats); the value-range claim deserves a checked conversion
        // or a written justification.
        if token.tok.is_ident("as") {
            if let Some(ty) = toks
                .get(k + 1)
                .and_then(|t| t.tok.ident())
                .filter(|t| INT_TYPES.contains(t))
            {
                out.push(Diagnostic::new(
                    LintId::ArithCast,
                    file.path.clone(),
                    line,
                    format!(
                        "`as {ty}` cast in fixed-point code truncates silently; \
                         use `{ty}::from` / `try_from`, or justify with an allow \
                         comment"
                    ),
                ));
                continue;
            }
        }
        // Binary `+` / `*` (and `+=` / `*=`).
        let op = match &token.tok {
            Tok::Punct(c @ ('+' | '*')) => *c,
            _ => continue,
        };
        let Some(prev) = k.checked_sub(1).and_then(|p| toks.get(p)) else {
            continue; // start of stream: cannot be binary
        };
        if !ends_value(&prev.tok) {
            continue; // unary deref / ref position / start of expr
        }
        // `+=`: the right operand sits one past the `=`.
        let rhs_at = if toks.get(k + 1).is_some_and(|t| t.tok.is_punct('=')) {
            k + 2
        } else {
            k + 1
        };
        let Some(rhs) = toks.get(rhs_at) else {
            continue;
        };
        if !begins_value(&rhs.tok) {
            continue;
        }
        if is_one(&rhs.tok) || is_one(&prev.tok) {
            continue; // counter bump / off-by-one adjustment
        }
        if is_float_literal(&rhs.tok) || is_float_literal(&prev.tok) {
            continue; // float math saturates rather than wrapping
        }
        let shown = if rhs_at == k + 2 { format!("{op}=") } else { op.to_string() };
        out.push(Diagnostic::new(
            LintId::ArithCast,
            file.path.clone(),
            line,
            format!(
                "unchecked `{shown}` in fixed-point code can wrap; use \
                 `checked_`/`saturating_` arithmetic or justify with an \
                 allow comment"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<(u32, String)> {
        let file = SourceFile::new(
            SCOPED_FILES[0].to_string(),
            "obs".into(),
            lex(src).expect("lex"),
        );
        let mut out = Vec::new();
        check(&file, &mut out);
        out.retain(|d| !file.is_allowed(d.id, d.line));
        out.iter().map(|d| (d.line, d.message.clone())).collect()
    }

    #[test]
    fn flags_int_casts_and_unchecked_ops() {
        let src = "\
fn f(v: u64, n: usize) -> usize {\n\
    let a = v as usize;\n\
    let b = n * 8;\n\
    let mut c = n + b;\n\
    c += b;\n\
    c\n\
}\n";
        let hits = run(src);
        let lines: Vec<u32> = hits.iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![2, 3, 4, 5], "{hits:?}");
        assert!(hits[0].1.contains("as usize"));
        assert!(hits[3].1.contains("`+=`"));
    }

    #[test]
    fn counter_bumps_floats_and_derefs_pass() {
        let src = "\
fn f(xs: &mut [f64], v: f64) -> f64 {\n\
    let mut count = 0u64;\n\
    count += 1;\n\
    let scaled = v * 2.0;\n\
    for x in xs.iter_mut() {\n\
        *x += 1.0;\n\
    }\n\
    let cast = v as f64;\n\
    scaled + 1.0\n\
}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn out_of_scope_files_pass() {
        let file = SourceFile::new(
            "crates/core/src/governor.rs".into(),
            "core".into(),
            lex("fn f(a: u64, b: u64) -> u64 { (a * b) as u64 }").expect("lex"),
        );
        let mut out = Vec::new();
        check(&file, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn allow_comment_justifies() {
        let src = "\
fn f(v: u64) -> usize {\n\
    // ccdem-lint: allow(arith-cast) — v < 64 by construction\n\
    v as usize\n\
}\n";
        assert!(run(src).is_empty());
    }
}
