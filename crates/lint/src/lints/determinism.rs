//! The determinism lint.
//!
//! The repo's headline guarantee is that parallel sweeps are
//! byte-identical to serial ones and that every `RunResult` is a pure
//! function of the seed (DESIGN.md §4, §8). Three std facilities break
//! that guarantee silently when they leak into result-affecting code:
//!
//! * `std::time::Instant` / `SystemTime` — host wall-clock; two runs
//!   never read the same value;
//! * `std::thread::spawn` — unscoped threads with scheduler-dependent
//!   completion order (the sanctioned pool in `simkit::parallel` uses
//!   scoped threads with input-order collection);
//! * `HashMap` / `HashSet` — iteration order is randomized per process
//!   (`RandomState`), so any result derived from iterating one is
//!   nondeterministic; use `BTreeMap`/`BTreeSet` or sorted iteration.
//!
//! The lint flags any mention in a result-affecting crate outside the
//! whitelisted host-timing modules. Telemetry-only uses (the meter's
//! `diff_us` measurement, sweep wall-clock reporting) carry a line-level
//! `// ccdem-lint: allow(determinism)` with justification.

use crate::diag::{Diagnostic, LintId};
use crate::source::SourceFile;

/// Crates whose code can affect a `RunResult`.
pub const RESULT_AFFECTING_CRATES: [&str; 9] = [
    "simkit",
    "pixelbuf",
    "panel",
    "compositor",
    "workloads",
    "power",
    "core",
    "metrics",
    "experiments",
];

/// Whitelisted files: host timing is these modules' documented purpose,
/// and their outputs are kept strictly outside `RunResult`.
pub const WHITELIST_FILES: [&str; 4] = [
    // The parallel runner: scoped threads, input-order collection.
    "crates/simkit/src/parallel.rs",
    // Host wall-clock reporting, outside RunResult by design.
    "crates/metrics/src/timing.rs",
    // The perf harness measures host time; that is its output.
    "crates/experiments/src/perf.rs",
    // The scratch-reuse harness times fresh vs reused batches.
    "crates/experiments/src/perf_sweep.rs",
];

/// The forbidden type names.
const FORBIDDEN_IDENTS: [(&str, &str); 4] = [
    ("Instant", "host wall-clock is nondeterministic across runs"),
    ("SystemTime", "host wall-clock is nondeterministic across runs"),
    (
        "HashMap",
        "iteration order is randomized per process; use BTreeMap or sorted iteration",
    ),
    (
        "HashSet",
        "iteration order is randomized per process; use BTreeSet or sorted iteration",
    ),
];

/// Runs the determinism lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !RESULT_AFFECTING_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    if WHITELIST_FILES.contains(&file.path.as_str()) {
        return;
    }
    for (i, token) in file.tokens.iter().enumerate() {
        if file.is_test_line(token.line) {
            continue;
        }
        if let Some(name) = token.tok.ident() {
            if let Some((_, why)) = FORBIDDEN_IDENTS.iter().find(|(f, _)| *f == name) {
                out.push(Diagnostic::new(
                    LintId::Determinism,
                    file.path.clone(),
                    token.line,
                    format!("`{name}` in result-affecting crate `{}`: {why}", file.crate_name),
                ));
                continue;
            }
            // `thread::spawn` — unscoped threads.
            if name == "thread"
                && file.tokens.get(i + 1).is_some_and(|t| t.tok.is_punct(':'))
                && file.tokens.get(i + 2).is_some_and(|t| t.tok.is_punct(':'))
                && file.tokens.get(i + 3).is_some_and(|t| t.tok.is_ident("spawn"))
            {
                out.push(Diagnostic::new(
                    LintId::Determinism,
                    file.path.clone(),
                    token.line,
                    format!(
                        "`thread::spawn` in result-affecting crate `{}`: \
                         use `ccdem_simkit::parallel` (scoped threads, input-order collection)",
                        file.crate_name
                    ),
                ));
            }
        }
    }
}
