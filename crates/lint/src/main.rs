//! The standalone lint binary: `cargo run -p ccdem-lint [-- --json]`.
//!
//! Thin wrapper over [`ccdem_lint::run`]; the `ccdem lint` CLI verb is
//! the same engine behind the workspace binary. Exit codes: 0 clean,
//! 1 findings, 2 usage or configuration error.

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use ccdem_lint::{find_workspace_root, run, LintOptions};

const USAGE: &str = "usage: ccdem-lint [--json] [--fix-baseline] [--stats]\n\
  --json          emit diagnostics as ccdem-obs JSON lines\n\
  --fix-baseline  rewrite lint.allow to the current findings\n\
  --stats         print per-family counts, call-graph size, and wall time";

fn main() -> ExitCode {
    let mut json = false;
    let mut fix_baseline = false;
    let mut stats = false;
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-baseline" => fix_baseline = true,
            "--stats" => stats = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ccdem-lint: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = match env::current_dir() {
        Ok(cwd) => cwd,
        Err(err) => {
            eprintln!("ccdem-lint: cannot determine working directory: {err}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!("ccdem-lint: no workspace Cargo.toml above {}", cwd.display());
        return ExitCode::from(2);
    };
    let mut options = LintOptions::new(root);
    options.fix_baseline = fix_baseline;

    let started = Instant::now();
    match run(&options) {
        Ok(report) => {
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            for d in &report.reported {
                if json {
                    println!("{}", d.to_json());
                } else {
                    println!("{}", d.render());
                }
            }
            if stats {
                print_stats(&report, wall_ms);
            }
            eprintln!(
                "ccdem-lint: {} file(s) scanned, {} finding(s), {} baselined, {} suppressed{}",
                report.files_scanned,
                report.reported.len(),
                report.baselined.len(),
                report.suppressed,
                if report.baseline_rewritten {
                    " (lint.allow rewritten)"
                } else {
                    ""
                },
            );
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("ccdem-lint: {err}");
            ExitCode::from(2)
        }
    }
}

/// The `--stats` block. `key value` lines on stdout so CI can gate on
/// them (`scripts/ci.sh` parses `wall_ms` and `baseline_total`).
fn print_stats(report: &ccdem_lint::Report, wall_ms: f64) {
    let s = &report.stats;
    println!("stats files_scanned {}", report.files_scanned);
    println!("stats functions {}", s.fn_count);
    println!("stats reachable_fns {}", s.reachable_fns);
    println!("stats baseline_total {}", s.baseline_total);
    println!("stats wall_ms {}", wall_ms.round() as u64);
    for (id, count) in &s.family_counts {
        println!("stats family {} {}", id, count);
    }
}
