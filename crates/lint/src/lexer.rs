//! A hand-rolled Rust lexer, sufficient for token-stream lint matching.
//!
//! This is not a full `rustc` lexer; it is the subset the lints need to
//! be *sound on real Rust source*: every construct that could make a
//! naive substring scan lie — string literals (plain, raw, byte, raw
//! byte, with arbitrary `#` fences), character literals vs. lifetimes,
//! nested block comments, doc comments — is tokenized correctly, so a
//! `unwrap()` inside `r#"…unwrap()…"#` or a `HashMap` in a doc example
//! never reaches a lint. Comments are kept out of the token stream but
//! collected separately (with line numbers) because two consumers need
//! them: line-level `// ccdem-lint: allow(…)` suppressions and the
//! section-table lint, which cross-checks the module-doc table.
//!
//! Multi-character operators are deliberately emitted as single-char
//! punctuation tokens (`::` is `:` `:`): the lints match short fixed
//! sequences and never need operator-level granularity.

use std::fmt;

/// One significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (raw identifiers are stripped of `r#`).
    Ident(String),
    /// A lifetime, without the leading `'`.
    Lifetime(String),
    /// A string literal (plain or raw); the payload is the *cooked*
    /// value for plain strings and the verbatim inner text for raw ones.
    Str(String),
    /// A byte-string literal (`b"…"` / `br"…"`); payload as for [`Tok::Str`].
    ByteStr(String),
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A numeric literal, verbatim.
    Num(String),
    /// A single punctuation character.
    Punct(char),
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// The string-literal payload, if this is a string literal.
    pub fn str_value(&self) -> Option<&str> {
        match self {
            Tok::Str(value) => Some(value),
            _ => None,
        }
    }

    /// Whether this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, Tok::Ident(i) if i == name)
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(i) => write!(f, "{i}"),
            Tok::Lifetime(l) => write!(f, "'{l}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::ByteStr(_) => write!(f, "byte-string literal"),
            Tok::Char => write!(f, "char literal"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Punct(p) => write!(f, "{p}"),
        }
    }
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A comment (line or block, doc or plain) with its starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The comment text, including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for line
    /// comments).
    pub end_line: u32,
}

/// A lexing failure; diagnostics point at the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the failure.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// The lexed form of one source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source.
///
/// # Errors
///
/// Returns [`LexError`] for unterminated strings, comments, or raw-string
/// fences — which on real, compiling source indicates a lexer bug, so
/// the caller surfaces it as a hard diagnostic rather than skipping the
/// file silently.
pub fn lex(source: &str) -> Result<Lexed, LexError> {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    /// Consumes one byte, maintaining the line counter.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            message: message.into(),
        }
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.tokens.push(Token { tok, line });
    }

    fn run(mut self) -> Result<Lexed, LexError> {
        while let Some(b) = self.peek() {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment()?,
                b'"' => {
                    let value = self.string()?;
                    self.push(Tok::Str(value), line);
                }
                b'\'' => self.quote(line)?,
                b'b' | b'r' if self.string_prefix().is_some() => {
                    let kind = self.string_prefix();
                    self.prefixed_string(kind, line)?;
                }
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    let ident = self.ident();
                    self.push(Tok::Ident(ident), line);
                }
                b'0'..=b'9' => {
                    let num = self.number();
                    self.push(Tok::Num(num), line);
                }
                _ => {
                    self.bump();
                    // Multi-byte UTF-8 (only legal in comments/strings in
                    // valid Rust, but be permissive): skip continuation
                    // bytes without emitting tokens.
                    if b < 0x80 {
                        self.push(Tok::Punct(char::from(b)), line);
                    }
                }
            }
        }
        Ok(self.out)
    }

    /// Detects `b"`, `r"…`, `br"…`, `r#…#"…`, `br#…#"…`, `b'` at the
    /// cursor. Returns the prefix kind: `Some((is_byte, is_raw))`.
    /// A raw *identifier* (`r#type`) has ident chars, not `"`, after its
    /// `#` and is not a string prefix.
    fn string_prefix(&self) -> Option<(bool, bool)> {
        match (self.peek(), self.peek_at(1)) {
            (Some(b'r'), Some(b'"')) => Some((false, true)),
            (Some(b'r'), Some(b'#')) if self.fence_then_quote(1) => Some((false, true)),
            (Some(b'b'), Some(b'"')) => Some((true, false)),
            (Some(b'b'), Some(b'\'')) => Some((true, false)),
            (Some(b'b'), Some(b'r')) => match self.peek_at(2) {
                Some(b'"') => Some((true, true)),
                Some(b'#') if self.fence_then_quote(2) => Some((true, true)),
                _ => None,
            },
            _ => None,
        }
    }

    /// Whether, starting `offset` bytes ahead, a run of `#`s is followed
    /// by `"` — the raw-string fence, as opposed to a raw identifier.
    fn fence_then_quote(&self, offset: usize) -> bool {
        let mut at = offset;
        while self.peek_at(at) == Some(b'#') {
            at += 1;
        }
        at > offset && self.peek_at(at) == Some(b'"')
    }

    fn prefixed_string(&mut self, kind: Option<(bool, bool)>, line: u32) -> Result<(), LexError> {
        let (is_byte, is_raw) = match kind {
            Some(k) => k,
            None => return Ok(()),
        };
        if is_byte {
            self.bump(); // consume `b`
        }
        if is_raw {
            self.bump(); // consume `r`
            let value = self.raw_string()?;
            let tok = if is_byte {
                Tok::ByteStr(value)
            } else {
                Tok::Str(value)
            };
            self.push(tok, line);
        } else if self.peek() == Some(b'\'') {
            // Byte literal b'x'.
            self.char_literal()?;
            self.push(Tok::Char, line);
        } else {
            let value = self.string()?;
            let tok = if is_byte {
                Tok::ByteStr(value)
            } else {
                Tok::Str(value)
            };
            self.push(tok, line);
        }
        Ok(())
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(self.bytes.get(start..self.pos).unwrap_or(&[])).into_owned();
        self.out.comments.push(Comment {
            text,
            line,
            end_line: line,
        });
    }

    /// Block comments nest, per the Rust reference.
    fn block_comment(&mut self) -> Result<(), LexError> {
        let line = self.line;
        let start = self.pos;
        self.bump(); // `/`
        self.bump(); // `*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return Err(self.error("unterminated block comment")),
            }
        }
        let text = String::from_utf8_lossy(self.bytes.get(start..self.pos).unwrap_or(&[])).into_owned();
        self.out.comments.push(Comment {
            text,
            line,
            end_line: self.line,
        });
        Ok(())
    }

    /// A plain (escaped) string body, cursor on the opening `"`.
    fn string(&mut self) -> Result<String, LexError> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some(b'"') => return Ok(value),
                Some(b'\\') => match self.bump() {
                    None => return Err(self.error("unterminated escape")),
                    Some(b'n') => value.push('\n'),
                    Some(b't') => value.push('\t'),
                    Some(b'r') => value.push('\r'),
                    Some(b'0') => value.push('\0'),
                    Some(b'\\') => value.push('\\'),
                    Some(b'"') => value.push('"'),
                    Some(b'\'') => value.push('\''),
                    Some(b'\n') => {
                        // Line-continuation escape: skip leading whitespace.
                        while matches!(self.peek(), Some(b' ' | b'\t')) {
                            self.bump();
                        }
                    }
                    // \xNN, \u{…}: the cooked value of an escape never
                    // matters to a lint (names are plain ASCII), so a
                    // placeholder keeps the lexer simple and honest.
                    Some(b'x') => {
                        self.bump();
                        self.bump();
                        value.push('\u{FFFD}');
                    }
                    Some(b'u') => {
                        while let Some(b) = self.peek() {
                            let done = b == b'}';
                            self.bump();
                            if done {
                                break;
                            }
                        }
                        value.push('\u{FFFD}');
                    }
                    Some(other) => value.push(char::from(other)),
                },
                Some(b) if b < 0x80 => value.push(char::from(b)),
                Some(_) => value.push('\u{FFFD}'),
            }
        }
    }

    /// A raw string body, cursor on `#` or `"` (the `r` is consumed).
    fn raw_string(&mut self) -> Result<String, LexError> {
        let mut fence = 0usize;
        while self.peek() == Some(b'#') {
            self.bump();
            fence += 1;
        }
        if self.peek() != Some(b'"') {
            return Err(self.error("malformed raw string fence"));
        }
        self.bump();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated raw string")),
                Some(b'"') => {
                    // A closing quote counts only when followed by the
                    // full `#` fence.
                    let mut matched = 0usize;
                    while matched < fence && self.peek_at(1 + matched) == Some(b'#') {
                        matched += 1;
                    }
                    if matched == fence {
                        let value = String::from_utf8_lossy(
                            self.bytes.get(start..self.pos).unwrap_or(&[]),
                        )
                        .into_owned();
                        self.bump(); // `"`
                        for _ in 0..fence {
                            self.bump(); // `#`
                        }
                        return Ok(value);
                    }
                    self.bump();
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    /// Disambiguates `'a'` (char), `'\n'` (char), `'static` (lifetime).
    /// A lifetime is `'` + ident-start not closed by a matching `'`
    /// immediately after one character.
    fn quote(&mut self, line: u32) -> Result<(), LexError> {
        let next = self.peek_at(1);
        let after = self.peek_at(2);
        let is_lifetime = matches!(next, Some(b'_' | b'a'..=b'z' | b'A'..=b'Z'))
            && after != Some(b'\'');
        if is_lifetime {
            self.bump(); // `'`
            let name = self.ident();
            self.push(Tok::Lifetime(name), line);
            Ok(())
        } else {
            self.char_literal()?;
            self.push(Tok::Char, line);
            Ok(())
        }
    }

    /// A char literal, cursor on the opening `'`.
    fn char_literal(&mut self) -> Result<(), LexError> {
        self.bump(); // opening quote
        match self.bump() {
            None => return Err(self.error("unterminated character literal")),
            Some(b'\\') => {
                match self.bump() {
                    None => return Err(self.error("unterminated escape")),
                    Some(b'x') => {
                        self.bump();
                        self.bump();
                    }
                    Some(b'u') => {
                        while let Some(b) = self.peek() {
                            let done = b == b'}';
                            self.bump();
                            if done {
                                break;
                            }
                        }
                    }
                    Some(_) => {}
                }
            }
            // Multi-byte UTF-8 scalar (e.g. '–'): consume its
            // continuation bytes too.
            Some(b) if b >= 0x80 => {
                while matches!(self.peek(), Some(0x80..=0xBF)) {
                    self.bump();
                }
            }
            Some(_) => {}
        }
        if self.bump() != Some(b'\'') {
            return Err(self.error("unterminated character literal"));
        }
        Ok(())
    }

    fn ident(&mut self) -> String {
        // Raw identifier: `r#type` — strip the marker so lints see the
        // plain name.
        if self.peek() == Some(b'r') && self.peek_at(1) == Some(b'#') {
            self.bump();
            self.bump();
        }
        let start = self.pos;
        while matches!(self.peek(), Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')) {
            self.bump();
        }
        String::from_utf8_lossy(self.bytes.get(start..self.pos).unwrap_or(&[])).into_owned()
    }

    fn number(&mut self) -> String {
        let start = self.pos;
        // Digits, underscores, type suffixes, hex/oct/bin markers, and a
        // fractional part. `1.0` consumes the dot only when a digit
        // follows (so `x.0` field access still lexes as punctuation —
        // close enough, since `0` here follows a digit, not an ident).
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'_' | b'a'..=b'f' | b'A'..=b'F' | b'x' | b'o' | b'i' | b'u' | b's' | b'z')
        ) {
            self.bump();
        }
        if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(b'0'..=b'9')) {
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9' | b'_' | b'e' | b'E' | b'f')) {
                self.bump();
            }
        }
        String::from_utf8_lossy(self.bytes.get(start..self.pos).unwrap_or(&[])).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .expect("lex")
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn unwrap_inside_strings_is_not_an_ident() {
        let src = r####"
            let a = "call .unwrap() here";
            let b = r#"raw .unwrap() too"#;
            let c = b"bytes .unwrap()";
            let d = br##"raw bytes .unwrap()"##;
        "####;
        assert!(!idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn nested_block_comments_hide_tokens() {
        let src = "/* outer /* inner unwrap() */ still comment */ let x = 1;";
        let lexed = lex(src).expect("lex");
        assert!(!lexed.tokens.iter().any(|t| t.tok.is_ident("unwrap")));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments.first().expect("one comment").text.contains("inner"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let lexed = lex(src).expect("lex");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .count();
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn multibyte_char_literal_lexes() {
        let src = "let dash = '–'; let ok = x.split('|');";
        let lexed = lex(src).expect("lex");
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn escaped_quote_chars_lex() {
        let lexed = lex(r"let q = '\''; let n = '\n'; let u = '\u{1F600}';").expect("lex");
        assert_eq!(lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count(), 3);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "let a = 1;\nlet b = 2;\n\nlet c = 3;";
        let lexed = lex(src).expect("lex");
        let line_of = |name: &str| {
            lexed
                .tokens
                .iter()
                .find(|t| t.tok.is_ident(name))
                .map(|t| t.line)
        };
        assert_eq!(line_of("a"), Some(1));
        assert_eq!(line_of("b"), Some(2));
        assert_eq!(line_of("c"), Some(4));
    }

    #[test]
    fn string_values_cook_escapes() {
        let lexed = lex(r#"emit("a\nb");"#).expect("lex");
        let value = lexed
            .tokens
            .iter()
            .find_map(|t| t.tok.str_value())
            .expect("one string");
        assert_eq!(value, "a\nb");
    }

    #[test]
    fn raw_string_fences_respected() {
        let lexed = lex(r####"let x = r##"has "# inside"##;"####).expect("lex");
        let value = lexed
            .tokens
            .iter()
            .find_map(|t| t.tok.str_value())
            .expect("one string");
        assert_eq!(value, r##"has "# inside"##);
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// uses HashMap in prose\n//! and here\nfn f() {}";
        let lexed = lex(src).expect("lex");
        assert!(!lexed.tokens.iter().any(|t| t.tok.is_ident("HashMap")));
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn raw_identifiers_are_stripped() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("let x = \"oops").is_err());
        assert!(lex("/* never closed").is_err());
        assert!(lex("let x = r#\"oops\"").is_err());
    }
}
