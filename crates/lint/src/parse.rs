//! Item-level parsing: a brace tree over the lexed token stream.
//!
//! The call-graph lints need to know *which function* a token lives in
//! and *which functions that function calls* — nothing more. This
//! parser recovers exactly that from the [`lexer`](crate::lexer)
//! output: `mod` / `impl` / `trait` / `fn` nesting, the line span of
//! every function body, and the call sites inside it. It is not a Rust
//! parser; anything it does not understand it walks past, and call
//! extraction deliberately over-approximates (trait methods and
//! closures resolve by name suffix downstream), which keeps the
//! reachability analysis sound for the lint's purpose: it may mark too
//! much code as hot, never too little.

use crate::lexer::Token;
use crate::source::{matching, SourceFile};

/// One function (or method) with a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Repo-relative path of the defining file.
    pub file: String,
    /// Crate the file belongs to.
    pub crate_name: String,
    /// The bare function name.
    pub name: String,
    /// The enclosing `impl`/`trait` type, if any (last path segment of
    /// the self type; `impl fmt::Display for Foo` records `Foo`).
    pub type_name: Option<String>,
    /// The in-file module path (`mod a { mod b { … } }` → `["a","b"]`).
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub start_line: u32,
    /// 1-based line of the body's closing brace.
    pub end_line: u32,
    /// Call sites inside the body. Calls inside closures and nested
    /// functions are attributed to this item too (over-approximation).
    pub calls: Vec<CallSite>,
    /// Whether the item sits inside a `#[cfg(test)]` / `#[test]` range.
    pub is_test: bool,
}

impl FnItem {
    /// `Type::name` when inside an impl, else the bare name.
    pub fn qualified_name(&self) -> String {
        match &self.type_name {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (last path segment).
    pub name: String,
    /// The path segment immediately before `::name`, when present
    /// (`GridSampler::new(…)` → `Some("GridSampler")`, `Self::f()` →
    /// `Some("Self")`). `None` for bare calls and method calls.
    pub qualifier: Option<String>,
    /// Whether this is a `.name(…)` method call.
    pub method: bool,
    /// 1-based line of the call.
    pub line: u32,
}

/// Identifiers that look like calls lexically but are not function
/// calls worth an edge: control-flow keywords and the std tuple-variant
/// constructors that appear everywhere.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "unsafe", "let", "in", "move",
    "ref", "mut", "break", "continue", "where", "impl", "dyn", "as", "fn", "use", "pub",
    "Some", "None", "Ok", "Err",
];

/// Parses every function item in `file`.
pub fn parse(file: &SourceFile) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut module = Vec::new();
    walk(file, 0, file.tokens.len(), &mut module, None, &mut out);
    out
}

/// Walks tokens in `[i, end)`, recursing into every brace region so
/// nested items (mods in mods, fns in fns, impls in functions) are all
/// found.
fn walk(
    file: &SourceFile,
    mut i: usize,
    end: usize,
    module: &mut Vec<String>,
    impl_type: Option<&str>,
    out: &mut Vec<FnItem>,
) {
    let toks = &file.tokens;
    while i < end {
        let Some(token) = toks.get(i) else { break };
        // Skip attributes: `#[…]` and `#![…]`.
        if token.tok.is_punct('#') {
            let open = if toks.get(i + 1).is_some_and(|t| t.tok.is_punct('!')) {
                i + 2
            } else {
                i + 1
            };
            if toks.get(open).is_some_and(|t| t.tok.is_punct('[')) {
                if let Some(close) = matching(toks, open, '[', ']') {
                    i = close + 1;
                    continue;
                }
            }
        }
        if token.tok.is_ident("mod") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.tok.ident()) {
                match toks.get(i + 2).map(|t| &t.tok) {
                    Some(t) if t.is_punct('{') => {
                        if let Some(close) = matching(toks, i + 2, '{', '}') {
                            module.push(name.to_string());
                            walk(file, i + 3, close, module, impl_type, out);
                            module.pop();
                            i = close + 1;
                            continue;
                        }
                    }
                    _ => {
                        // `mod name;` — out-of-line module, nothing here.
                        i += 2;
                        continue;
                    }
                }
            }
        }
        if token.tok.is_ident("impl") || token.tok.is_ident("trait") {
            let is_trait = token.tok.is_ident("trait");
            if let Some((ty, body_open)) = impl_header(toks, i, end, is_trait) {
                if let Some(close) = matching(toks, body_open, '{', '}') {
                    walk(file, body_open + 1, close, module, Some(&ty), out);
                    i = close + 1;
                    continue;
                }
            }
            // `impl Trait for X;` or an unterminated header: move on.
            i += 1;
            continue;
        }
        if token.tok.is_ident("fn") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.tok.ident()) {
                // The body opens at the first `{` before any `;` (a `;`
                // first means a bodiless trait-method declaration).
                let mut j = i + 2;
                let mut body_open = None;
                while j < end {
                    let Some(tj) = toks.get(j) else { break };
                    if tj.tok.is_punct('{') {
                        body_open = Some(j);
                        break;
                    }
                    if tj.tok.is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = body_open {
                    if let Some(close) = matching(toks, open, '{', '}') {
                        let mut calls = Vec::new();
                        collect_calls(toks, open + 1, close, &mut calls);
                        out.push(FnItem {
                            file: file.path.clone(),
                            crate_name: file.crate_name.clone(),
                            name: name.to_string(),
                            type_name: impl_type.map(str::to_string),
                            module: module.clone(),
                            start_line: token.line,
                            end_line: line_of(toks, close),
                            calls,
                            is_test: file.is_test_line(token.line),
                        });
                        // Nested named fns become items of their own.
                        walk(file, open + 1, close, module, impl_type, out);
                        i = close + 1;
                        continue;
                    }
                }
                i = j + 1;
                continue;
            }
        }
        // Any other brace region (struct bodies, const initialisers):
        // recurse so no item hides from us.
        if token.tok.is_punct('{') {
            if let Some(close) = matching(toks, i, '{', '}') {
                walk(file, i + 1, close, module, impl_type, out);
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// The line of token `k` (0 only when `k` is out of range, which the
/// `matching` invariants rule out).
fn line_of(toks: &[Token], k: usize) -> u32 {
    toks.get(k).map_or(0, |t| t.line)
}

/// Parses an `impl`/`trait` header starting at `kw`: returns the
/// self-type name and the index of the body `{`.
///
/// For `impl`, the name is the last angle-depth-0 path segment before
/// the body or a `where` clause, taken after `for` when present — so
/// `impl<T> fmt::Display for Grid<T> where T: Copy` yields `Grid`. For
/// `trait`, it is the identifier right after the keyword (`trait Foo:
/// Bar` must not pick up `Bar`).
fn impl_header(toks: &[Token], kw: usize, end: usize, is_trait: bool) -> Option<(String, usize)> {
    let mut name: Option<&str> = None;
    let mut angle_depth = 0i32;
    let mut in_where = false;
    let mut j = kw + 1;
    while j < end {
        let Some(t) = toks.get(j) else { break };
        if t.tok.is_punct('{') && angle_depth <= 0 {
            return name.map(|n| (n.to_string(), j));
        }
        if t.tok.is_punct(';') && angle_depth <= 0 {
            return None;
        }
        if t.tok.is_punct('<') {
            angle_depth += 1;
        } else if t.tok.is_punct('>') {
            // `->` in an `impl Fn(…) -> R` bound: the `>` belongs to the
            // arrow, not a generic list.
            if !toks.get(j.wrapping_sub(1)).is_some_and(|p| p.tok.is_punct('-')) {
                angle_depth -= 1;
            }
        } else if angle_depth <= 0 {
            if t.tok.is_ident("where") {
                in_where = true;
            } else if t.tok.is_ident("for") {
                name = None; // the self type follows
            } else if let Some(id) = t.tok.ident() {
                if !in_where && !matches!(id, "dyn" | "const" | "unsafe" | "async") {
                    name = Some(id);
                    if is_trait {
                        // First identifier is the trait name; stop so
                        // supertrait bounds don't override it.
                        in_where = true;
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// Extracts call sites in the token range `[start, end)`.
fn collect_calls(toks: &[Token], start: usize, end: usize, out: &mut Vec<CallSite>) {
    for k in start..end {
        let Some(tok) = toks.get(k) else { break };
        // `.name::<…>(…)` — turbofish method call; the `(` is far away,
        // so catch it at the `.` instead.
        if tok.tok.is_punct('.')
            && toks.get(k + 2).is_some_and(|t| t.tok.is_punct(':'))
            && toks.get(k + 3).is_some_and(|t| t.tok.is_punct(':'))
            && toks.get(k + 4).is_some_and(|t| t.tok.is_punct('<'))
        {
            if let Some(next) = toks.get(k + 1) {
                if let Some(name) = next.tok.ident() {
                    if !NON_CALL_IDENTS.contains(&name) {
                        out.push(CallSite {
                            name: name.to_string(),
                            qualifier: None,
                            method: true,
                            line: next.line,
                        });
                    }
                }
            }
            continue;
        }
        if !tok.tok.is_punct('(') || k < start + 1 {
            continue;
        }
        let Some(prev) = toks.get(k.wrapping_sub(1)) else {
            continue;
        };
        let Some(name) = prev.tok.ident() else {
            continue;
        };
        if NON_CALL_IDENTS.contains(&name) {
            continue;
        }
        let prev2 = k.checked_sub(2).and_then(|p| toks.get(p));
        // `fn name(` is a declaration, not a call.
        if k >= start + 2 && prev2.is_some_and(|t| t.tok.is_ident("fn")) {
            continue;
        }
        let line = prev.line;
        if k >= start + 2 && prev2.is_some_and(|t| t.tok.is_punct('.')) {
            out.push(CallSite {
                name: name.to_string(),
                qualifier: None,
                method: true,
                line,
            });
        } else if k >= start + 3
            && prev2.is_some_and(|t| t.tok.is_punct(':'))
            && k.checked_sub(3)
                .and_then(|p| toks.get(p))
                .is_some_and(|t| t.tok.is_punct(':'))
        {
            let qualifier = toks
                .get(k.wrapping_sub(4))
                .and_then(|t| t.tok.ident())
                .map(str::to_string);
            out.push(CallSite {
                name: name.to_string(),
                qualifier,
                method: false,
                line,
            });
        } else {
            out.push(CallSite {
                name: name.to_string(),
                qualifier: None,
                method: false,
                line,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        let file = SourceFile::new("t.rs".into(), "t".into(), lex(src).expect("lex"));
        parse(&file)
    }

    #[test]
    fn free_fn_span_and_name() {
        let fns = items("fn a() {\n    b();\n}\n\nfn b() {}\n");
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!((fns[0].start_line, fns[0].end_line), (1, 3));
        assert_eq!(fns[0].calls, vec![CallSite {
            name: "b".into(),
            qualifier: None,
            method: false,
            line: 2,
        }]);
        assert_eq!(fns[1].name, "b");
        assert!(fns[1].calls.is_empty());
    }

    #[test]
    fn impl_methods_carry_the_type() {
        let src = "struct G;\nimpl G {\n    fn m(&self) { self.n(); }\n    fn n(&self) {}\n}\n\
                   impl std::fmt::Display for G {\n    fn fmt(&self) {}\n}\n";
        let fns = items(src);
        let names: Vec<String> = fns.iter().map(FnItem::qualified_name).collect();
        assert_eq!(names, vec!["G::m", "G::n", "G::fmt"]);
        assert!(fns[0].calls.iter().any(|c| c.name == "n" && c.method));
    }

    #[test]
    fn generic_impl_for_resolves_self_type() {
        let src = "impl<T: Clone> Mapper for Table<T> where T: Copy {\n    fn f(&self) {}\n}\n";
        let fns = items(src);
        assert_eq!(fns[0].type_name.as_deref(), Some("Table"));
    }

    #[test]
    fn trait_default_bodies_use_trait_name_not_supertrait() {
        let fns = items("trait Foo: Bar {\n    fn d(&self) { go(); }\n    fn decl(&self);\n}\n");
        assert_eq!(fns.len(), 1, "bodiless declarations are not items");
        assert_eq!(fns[0].qualified_name(), "Foo::d");
    }

    #[test]
    fn modules_nest() {
        let fns = items("mod a {\n    mod b {\n        fn deep() {}\n    }\n}\n");
        assert_eq!(fns[0].module, vec!["a", "b"]);
    }

    #[test]
    fn qualified_and_turbofish_calls() {
        let src = "fn f(v: &[u32]) {\n    let s = Sampler::new();\n    crate::util::go();\n    \
                   let x: Vec<u32> = v.iter().collect::<Vec<u32>>();\n}\n";
        let fns = items(src);
        let calls = &fns[0].calls;
        assert!(calls.iter().any(|c| c.name == "new" && c.qualifier.as_deref() == Some("Sampler")));
        assert!(calls.iter().any(|c| c.name == "go" && c.qualifier.as_deref() == Some("util")));
        assert!(calls.iter().any(|c| c.name == "collect" && c.method));
        assert!(calls.iter().any(|c| c.name == "iter" && c.method));
    }

    #[test]
    fn closures_attribute_calls_to_the_enclosing_fn() {
        let fns = items("fn f() {\n    run(|x| helper(x));\n}\n");
        let calls = &fns[0].calls;
        assert!(calls.iter().any(|c| c.name == "run"));
        assert!(calls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn nested_fns_are_their_own_items_and_over_approximated() {
        let fns = items("fn outer() {\n    fn inner() { leaf(); }\n    inner();\n}\n");
        assert_eq!(fns.len(), 2);
        let outer = fns.iter().find(|f| f.name == "outer").expect("outer");
        // Over-approximation: the nested body's calls count for both.
        assert!(outer.calls.iter().any(|c| c.name == "leaf"));
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
        let inner = fns.iter().find(|f| f.name == "inner").expect("inner");
        assert!(inner.calls.iter().any(|c| c.name == "leaf"));
    }

    #[test]
    fn test_items_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let fns = items(src);
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test, "{fns:?}");
    }

    #[test]
    fn control_flow_and_variants_are_not_calls() {
        let fns = items("fn f(x: u32) -> Option<u32> {\n    if x > (1) { return Some(x); }\n    \
                         match x { 0 => None, _ => Ok(x).ok() }\n}\n");
        let names: Vec<&str> = fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["ok"], "{names:?}");
    }
}
