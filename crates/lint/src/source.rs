//! The per-file analysis model: lexed tokens, test-code regions, and
//! line-level suppressions.

use crate::diag::LintId;
use crate::lexer::{Comment, Lexed, Token};

/// One workspace source file, lexed and annotated.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// The crate the file belongs to (directory name under `crates/`,
    /// or `ccdem` for the root package).
    pub crate_name: String,
    /// Significant tokens.
    pub tokens: Vec<Token>,
    /// Comments (for suppressions and doc-table parsing).
    pub comments: Vec<Comment>,
    /// Inclusive line ranges occupied by `#[cfg(test)]` / `#[test]`
    /// items; lints treat these as test code.
    test_ranges: Vec<(u32, u32)>,
    /// Suppressions from `// ccdem-lint: allow(…)` comments.
    allows: Vec<Allow>,
}

/// One `(comment, lint-id)` suppression entry. A comment naming several
/// ids yields one entry per id, so staleness is tracked per id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The suppressed lint family.
    pub id: LintId,
    /// 1-based line of the allow comment itself (where a staleness
    /// finding anchors).
    pub comment_line: u32,
    /// Inclusive line range the suppression covers: the comment block
    /// plus the line after it.
    pub lines: (u32, u32),
}

impl SourceFile {
    /// Builds the model from a lexed file.
    pub fn new(path: String, crate_name: String, lexed: Lexed) -> SourceFile {
        let test_ranges = test_ranges(&lexed.tokens);
        let allows = allows(&lexed.comments);
        SourceFile {
            path,
            crate_name,
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_ranges,
            allows,
        }
    }

    /// Whether `line` is inside a `#[cfg(test)]` / `#[test]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Whether a `// ccdem-lint: allow(id)` suppression covers `line`.
    pub fn is_allowed(&self, id: LintId, line: u32) -> bool {
        self.allow_indices(id, line).next().is_some()
    }

    /// Indices (into [`allows`](Self::allows)) of every suppression
    /// entry covering `(id, line)` — the driver marks these used for
    /// stale-suppression detection.
    pub fn allow_indices(&self, id: LintId, line: u32) -> impl Iterator<Item = usize> + '_ {
        self.allows
            .iter()
            .enumerate()
            .filter(move |(_, a)| a.id == id && (a.lines.0..=a.lines.1).contains(&line))
            .map(|(i, _)| i)
    }

    /// Every suppression entry in the file.
    pub fn allows(&self) -> &[Allow] {
        &self.allows
    }

    /// The number of distinct allow entries in the file (for reporting).
    pub fn allow_count(&self) -> usize {
        self.allows.len()
    }
}

/// Parses `// ccdem-lint: allow(id, id2)` comments into per-line
/// suppressions. A suppression covers the comment's own lines plus the
/// line after it, so both styles work:
///
/// ```text
/// foo().unwrap(); // ccdem-lint: allow(panic) — justified because …
///
/// // ccdem-lint: allow(determinism) — host timing is telemetry-only
/// use std::time::Instant;
/// ```
///
/// When the justification spans several consecutive `//` lines, coverage
/// extends through the whole block to the line after its last comment —
/// the allow can sit on any line of the block.
///
/// Doc comments (`///`, `//!`, `/**`, `/*!`) are skipped: prose and
/// examples about the allow syntax must not create live suppressions
/// (which would then be flagged as stale).
fn allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (k, comment) in comments.iter().enumerate() {
        if is_doc_comment(&comment.text) {
            continue;
        }
        let Some(rest) = comment.text.split("ccdem-lint:").nth(1) else {
            continue;
        };
        let Some(args) = rest.split("allow(").nth(1) else {
            continue;
        };
        let Some(list) = args.split(')').next() else {
            continue;
        };
        // Extend through immediately following comment lines (a
        // multi-line `//` justification block).
        let mut end = comment.end_line;
        for next in comments.get(k + 1..).unwrap_or(&[]) {
            if next.line == end + 1 {
                end = next.end_line;
            } else {
                break;
            }
        }
        for raw in list.split(',') {
            if let Some(id) = LintId::parse(raw.trim()) {
                out.push(Allow {
                    id,
                    comment_line: comment.line,
                    lines: (comment.line, end + 1),
                });
            }
        }
    }
    out
}

/// Whether a raw comment (prefix included) is a doc comment.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///") || text.starts_with("//!") || text.starts_with("/**") || text.starts_with("/*!")
}

/// Finds the inclusive line ranges of items annotated `#[cfg(test)]`
/// (including `cfg(all(test, …))` but not `cfg(not(test))`) or
/// `#[test]`-style attributes. The range runs from the attribute to the
/// end of the annotated item — the matching close brace, or the `;` for
/// brace-less items like `use` declarations.
fn test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !starts_attribute(tokens, i) {
            i += 1;
            continue;
        }
        let attr_line = line_at(tokens, i);
        let Some(close) = matching(tokens, i + 1, '[', ']') else {
            break;
        };
        let is_test = attribute_is_test(tokens.get(i + 2..close).unwrap_or(&[]));
        i = close + 1;
        if !is_test {
            continue;
        }
        // Skip any further attributes on the same item.
        while starts_attribute(tokens, i) {
            match matching(tokens, i + 1, '[', ']') {
                Some(close) => i = close + 1,
                None => return ranges,
            }
        }
        // The item body: up to the first `;` at depth 0, or the close of
        // the first brace block.
        let mut end_line = attr_line;
        let mut j = i;
        while let Some(token) = tokens.get(j) {
            end_line = token.line;
            if token.tok.is_punct(';') {
                break;
            }
            if token.tok.is_punct('{') {
                if let Some(close) = matching(tokens, j, '{', '}') {
                    end_line = line_at(tokens, close);
                    j = close;
                }
                break;
            }
            j += 1;
        }
        ranges.push((attr_line, end_line));
        i = j + 1;
    }
    ranges
}

fn line_at(tokens: &[Token], i: usize) -> u32 {
    tokens.get(i).map_or(0, |t| t.line)
}

/// Whether tokens at `i` start an attribute: `#` `[` (outer) or
/// `#` `!` `[` (inner).
fn starts_attribute(tokens: &[Token], i: usize) -> bool {
    let hash = tokens.get(i).is_some_and(|t| t.tok.is_punct('#'));
    let bracket = tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('['));
    hash && bracket
}

/// Whether the attribute token body marks test code. True for `test`
/// (`#[test]`), `cfg(test)`, and `cfg(all(test, …))`; false when every
/// `test` is wrapped in `not(…)`.
fn attribute_is_test(body: &[Token]) -> bool {
    for (k, token) in body.iter().enumerate() {
        if !token.tok.is_ident("test") {
            continue;
        }
        // `not ( test` — the two significant tokens before this `test`.
        let negated = k >= 2
            && body.get(k - 1).is_some_and(|t| t.tok.is_punct('('))
            && body.get(k - 2).is_some_and(|t| t.tok.is_ident("not"));
        if !negated {
            return true;
        }
    }
    false
}

/// The index of the token closing the bracket pair opened at `open_at`
/// (which must hold `open`), honouring nesting.
pub fn matching(tokens: &[Token], open_at: usize, open: char, close: char) -> Option<usize> {
    if !tokens.get(open_at)?.tok.is_punct(open) {
        return None;
    }
    let mut depth = 0usize;
    for (i, token) in tokens.iter().enumerate().skip(open_at) {
        if token.tok.is_punct(open) {
            depth += 1;
        } else if token.tok.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("test.rs".into(), "test".into(), lex(src).expect("lex"))
    }

    #[test]
    fn cfg_test_mod_is_a_test_range() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}";
        let f = file(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_library_code() {
        let f = file("#[cfg(not(test))]\nfn real() {}\n");
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn cfg_all_test_is_test_code() {
        let f = file("#[cfg(all(test, unix))]\nmod helpers {\n}\n");
        assert!(f.is_test_line(2));
    }

    #[test]
    fn cfg_test_use_extends_to_semicolon_only() {
        let f = file("#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() {}\n");
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn trailing_allow_covers_its_line() {
        let f = file("fn f() { g().unwrap(); } // ccdem-lint: allow(panic) — invariant\n");
        assert!(f.is_allowed(LintId::Panic, 1));
        assert!(!f.is_allowed(LintId::Determinism, 1));
    }

    #[test]
    fn preceding_allow_covers_next_line() {
        let f = file("// ccdem-lint: allow(determinism) — telemetry only\nuse std::time::Instant;\n");
        assert!(f.is_allowed(LintId::Determinism, 2));
        assert!(!f.is_allowed(LintId::Determinism, 3));
    }

    #[test]
    fn allow_block_extends_through_consecutive_comments() {
        let src = "// ccdem-lint: allow(determinism) — wall-clock feeds the\n\
                   // timing report only, never a RunResult.\n\
                   use std::time::Instant;\n\
                   fn lib() {}\n";
        let f = file(src);
        assert!(f.is_allowed(LintId::Determinism, 3));
        assert!(!f.is_allowed(LintId::Determinism, 4));
    }

    #[test]
    fn allow_accepts_multiple_ids() {
        let f = file("// ccdem-lint: allow(panic, determinism)\nlet x = v[0];\n");
        assert!(f.is_allowed(LintId::Panic, 2));
        assert!(f.is_allowed(LintId::Determinism, 2));
    }

    #[test]
    fn nested_attributes_inside_test_mod_do_not_split_the_range() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        let f = file(src);
        for line in 1..=5 {
            assert!(f.is_test_line(line), "line {line} should be test code");
        }
    }
}
