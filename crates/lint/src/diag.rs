//! Lint identities and diagnostics.

use std::fmt;

/// The stable identity of a lint family. The string forms are part of
/// the tool's interface: they appear in diagnostics, in
/// `// ccdem-lint: allow(<id>)` suppressions, and in the `lint.allow`
/// baseline file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// Host time, spawned threads, or unordered hash iteration in a
    /// result-affecting crate.
    Determinism,
    /// `unwrap()` / `expect(…)` / `panic!` / indexing-without-`get` in
    /// library code.
    Panic,
    /// An emitted event or metric name missing from the DESIGN.md §8
    /// taxonomy, or a documented name nothing emits.
    ObsTaxonomy,
    /// The Eq. 1 section-table invariants.
    SectionTable,
    /// Heap allocation inside a function reachable from a hot-path
    /// root (never baselinable; suppressible by documented allow).
    AllocHotPath,
    /// A truncating `as` cast or unchecked `+`/`*` in fixed-point code.
    ArithCast,
    /// An `Ordering::*` argument in `crates/obs` without a written
    /// justification.
    AtomicsOrdering,
    /// The lint tool itself failed to process a file (lexer error,
    /// unreadable file), or found its own configuration stale (unused
    /// suppressions, slack `lint.allow` budgets). Always fatal.
    Internal,
}

impl LintId {
    /// All suppressible lint families.
    pub const ALL: [LintId; 7] = [
        LintId::Determinism,
        LintId::Panic,
        LintId::ObsTaxonomy,
        LintId::SectionTable,
        LintId::AllocHotPath,
        LintId::ArithCast,
        LintId::AtomicsOrdering,
    ];

    /// The stable string form.
    pub fn as_str(self) -> &'static str {
        match self {
            LintId::Determinism => "determinism",
            LintId::Panic => "panic",
            LintId::ObsTaxonomy => "obs-taxonomy",
            LintId::SectionTable => "section-table",
            LintId::AllocHotPath => "alloc-hot-path",
            LintId::ArithCast => "arith-cast",
            LintId::AtomicsOrdering => "atomics-ordering",
            LintId::Internal => "internal",
        }
    }

    /// Parses the stable string form (as used in suppressions and the
    /// baseline file).
    pub fn parse(s: &str) -> Option<LintId> {
        LintId::ALL.into_iter().find(|id| id.as_str() == s)
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a lint, a location, and what is wrong there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint family fired.
    pub id: LintId,
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Whether the finding sits on the hot path (inside a function
    /// reachable from a hot-path root). Hot findings are never
    /// absorbed by the `lint.allow` baseline — only an explicit,
    /// documented line allow can silence them.
    pub hot: bool,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(id: LintId, file: impl Into<String>, line: u32, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            id,
            file: file.into(),
            line,
            message: message.into(),
            hot: false,
        }
    }

    /// The one-line human rendering: `file:line: [id] message`.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.id, self.message)
    }

    /// The JSON Lines rendering, shaped like a `ccdem-obs` telemetry
    /// event (`{"event":…,"t_us":…,"fields":{…}}`) so the in-repo
    /// `ccdem_obs::json` parser consumes lint output directly.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"event\":\"lint.diagnostic\",\"t_us\":0,\"fields\":{\"id\":");
        write_json_string(&mut out, self.id.as_str());
        out.push_str(",\"file\":");
        write_json_string(&mut out, &self.file);
        out.push_str(",\"line\":");
        out.push_str(&self.line.to_string());
        out.push_str(",\"message\":");
        write_json_string(&mut out, &self.message);
        if self.hot {
            out.push_str(",\"hot\":true");
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Writes `s` as a JSON string literal (RFC 8259 escaping).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for id in LintId::ALL {
            assert_eq!(LintId::parse(id.as_str()), Some(id));
        }
        assert_eq!(LintId::parse("nonsense"), None);
    }

    #[test]
    fn render_is_file_line_id_message() {
        let d = Diagnostic::new(LintId::Panic, "crates/x/src/a.rs", 7, "unwrap() in library code");
        assert_eq!(d.render(), "crates/x/src/a.rs:7: [panic] unwrap() in library code");
    }

    #[test]
    fn json_escapes_and_has_envelope() {
        let d = Diagnostic::new(LintId::ObsTaxonomy, "a\"b.rs", 1, "tab\there");
        let j = d.to_json();
        assert!(j.starts_with("{\"event\":\"lint.diagnostic\",\"t_us\":0,"));
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("tab\\there"));
    }
}
