//! `ccdem-lint` — workspace static analysis with zero dependencies.
//!
//! Four lint families guard invariants the compiler cannot see
//! (DESIGN.md §10):
//!
//! * **determinism** — no host clocks, unscoped threads, or
//!   randomized-order hash containers in result-affecting crates;
//! * **panic** — no `unwrap()` / `expect(…)` / `panic!` / unchecked
//!   indexing in library code;
//! * **obs-taxonomy** — the emitted event/metric names and the DESIGN.md
//!   §8 taxonomy tables agree in both directions;
//! * **section-table** — Eq. 1 (median thresholds, headroom, 60 Hz cap)
//!   holds for the device ladder, and the Fig. 5 doc table matches it.
//!
//! Everything is built on a hand-rolled Rust lexer ([`lexer`]) — no
//! `syn`, no `proc-macro2` — because the workspace builds offline with
//! no external crates. Findings can be suppressed per line with
//! `// ccdem-lint: allow(<id>)` comments ([`source`]) or absorbed by the
//! committed `lint.allow` count ratchet ([`baseline`]).

pub mod baseline;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod source;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::diag::{Diagnostic, LintId};
use crate::lints::{determinism, panic as panic_lint, section_table, taxonomy};
use crate::source::SourceFile;

/// The committed baseline file, at the workspace root.
pub const BASELINE_FILE: &str = "lint.allow";
/// The design document holding the §8 taxonomy tables.
pub const DESIGN_FILE: &str = "DESIGN.md";

/// How a lint run is configured.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Workspace root (the directory holding the `[workspace]`
    /// `Cargo.toml`, `DESIGN.md`, and `lint.allow`).
    pub root: PathBuf,
    /// Rewrite `lint.allow` to match the current findings instead of
    /// failing on them.
    pub fix_baseline: bool,
    /// Override for the DESIGN.md text (tests use this to prove the
    /// taxonomy lint fires when a documented name is removed).
    pub design_text: Option<String>,
}

impl LintOptions {
    /// Default options rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> LintOptions {
        LintOptions {
            root: root.into(),
            fix_baseline: false,
            design_text: None,
        }
    }
}

/// The outcome of a lint run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Findings that fail the run, sorted by file, line, and id.
    pub reported: Vec<Diagnostic>,
    /// Findings absorbed by the `lint.allow` baseline.
    pub baselined: Vec<Diagnostic>,
    /// Findings silenced by `// ccdem-lint: allow(…)` comments.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Whether `--fix-baseline` rewrote `lint.allow`.
    pub baseline_rewritten: bool,
}

impl Report {
    /// Whether the run passes.
    pub fn clean(&self) -> bool {
        self.reported.is_empty()
    }
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Runs every lint family over the workspace at `options.root`.
///
/// # Errors
///
/// Returns a message for configuration-level failures (unreadable root,
/// malformed `lint.allow`, unwritable baseline under `--fix-baseline`).
/// Per-file problems (lex errors, unreadable files) become `internal`
/// diagnostics instead, so one bad file cannot hide the rest.
pub fn run(options: &LintOptions) -> Result<Report, String> {
    let root = &options.root;
    let paths = workspace_sources(root)?;
    let files_scanned = paths.len();

    let mut files: BTreeMap<String, SourceFile> = BTreeMap::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for rel in &paths {
        let text = match fs::read_to_string(root.join(rel)) {
            Ok(text) => text,
            Err(err) => {
                diagnostics.push(Diagnostic::new(
                    LintId::Internal,
                    rel.clone(),
                    0,
                    format!("unreadable: {err}"),
                ));
                continue;
            }
        };
        match lexer::lex(&text) {
            Ok(lexed) => {
                let file = SourceFile::new(rel.clone(), crate_of(rel), lexed);
                files.insert(rel.clone(), file);
            }
            Err(err) => {
                diagnostics.push(Diagnostic::new(
                    LintId::Internal,
                    rel.clone(),
                    err.line,
                    format!("lexer error: {}", err.message),
                ));
            }
        }
    }

    // Per-file families, plus the taxonomy emission sweep.
    let mut emissions = Vec::new();
    for file in files.values() {
        determinism::check(file, &mut diagnostics);
        panic_lint::check(file, &mut diagnostics);
        taxonomy::collect(file, &mut emissions);
    }

    // The taxonomy cross-check against DESIGN.md §8.
    let design_text = match &options.design_text {
        Some(text) => Some(text.clone()),
        None => match fs::read_to_string(root.join(DESIGN_FILE)) {
            Ok(text) => Some(text),
            Err(err) => {
                diagnostics.push(Diagnostic::new(
                    LintId::Internal,
                    DESIGN_FILE,
                    0,
                    format!("unreadable: {err}"),
                ));
                None
            }
        },
    };
    if let Some(design) = &design_text {
        taxonomy::check(design, DESIGN_FILE, &emissions, &mut diagnostics);
    }

    // The section-table invariants.
    section_table::check(
        files.get(section_table::REFRESH_PATH),
        files.get(section_table::SECTION_PATH),
        &mut diagnostics,
    );

    // Line-level suppressions.
    let before = diagnostics.len();
    diagnostics.retain(|d| {
        !files
            .get(&d.file)
            .is_some_and(|f| f.is_allowed(d.id, d.line))
    });
    let suppressed = before - diagnostics.len();

    sort_diagnostics(&mut diagnostics);

    // The baseline ratchet. `--fix-baseline` rewrites the file to the
    // current findings (internal findings are never baselinable).
    let baseline_path = root.join(BASELINE_FILE);
    let mut baseline_rewritten = false;
    let baseline = if options.fix_baseline {
        let baselinable: Vec<Diagnostic> = diagnostics
            .iter()
            .filter(|d| d.id != LintId::Internal)
            .cloned()
            .collect();
        let rendered = Baseline::render(&baselinable);
        fs::write(&baseline_path, &rendered)
            .map_err(|err| format!("cannot write {}: {err}", baseline_path.display()))?;
        baseline_rewritten = true;
        Baseline::parse(&rendered).map_err(|err| err.to_string())?
    } else {
        match fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text).map_err(|err| err.to_string())?,
            Err(_) => Baseline::default(),
        }
    };
    let (mut reported, baselined) = baseline.apply(diagnostics);
    sort_diagnostics(&mut reported);

    Ok(Report {
        reported,
        baselined,
        suppressed,
        files_scanned,
        baseline_rewritten,
    })
}

fn sort_diagnostics(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.id, &a.message).cmp(&(&b.file, b.line, b.id, &b.message))
    });
}

/// The crate a repo-relative path belongs to: the directory name under
/// `crates/`, or `ccdem` for the root package's `src/`.
fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("ccdem")
        .to_string()
}

/// Every `.rs` file under `crates/*/src/` and `src/`, repo-relative with
/// forward slashes, sorted. Test directories (`tests/`, `benches/`) are
/// not scanned: the lints only govern library code, and integration
/// tests assert on fixture files that deliberately violate them.
fn workspace_sources(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(err) => return Err(format!("cannot read {}: {err}", crates_dir.display())),
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), root, &mut out);
    }
    collect_rs(&root.join("src"), root, &mut out);
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/core/src/meter.rs"), "core");
        assert_eq!(crate_of("src/bin/ccdem.rs"), "ccdem");
        assert_eq!(crate_of("src/lib.rs"), "ccdem");
    }

    #[test]
    fn find_root_walks_up() {
        // The crate's own manifest does not declare a workspace; the
        // repo root's does.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert_ne!(root, here);
    }

    #[test]
    fn sort_is_stable_across_fields() {
        let mut d = vec![
            Diagnostic::new(LintId::Panic, "b.rs", 1, "m"),
            Diagnostic::new(LintId::Panic, "a.rs", 9, "m"),
            Diagnostic::new(LintId::Determinism, "a.rs", 9, "m"),
        ];
        sort_diagnostics(&mut d);
        assert_eq!(d.first().map(|x| x.id), Some(LintId::Determinism));
        assert_eq!(d.last().map(|x| x.file.as_str()), Some("b.rs"));
    }
}
