//! `ccdem-lint` — workspace static analysis with zero dependencies.
//!
//! Seven lint families guard invariants the compiler cannot see
//! (DESIGN.md §10):
//!
//! * **determinism** — no host clocks, unscoped threads, or
//!   randomized-order hash containers in result-affecting crates;
//! * **panic** — no `unwrap()` / `expect(…)` / `panic!` / unchecked
//!   indexing in library code; panics inside functions the call graph
//!   proves reachable from a hot-path root are never baselinable;
//! * **alloc-hot-path** — no heap allocation reachable from a hot-path
//!   root ([`callgraph`]);
//! * **arith-cast** — no truncating `as` casts or unchecked `+`/`*` in
//!   the fixed-point files;
//! * **atomics-ordering** — every `Ordering::*` in `crates/obs` carries
//!   a written justification;
//! * **obs-taxonomy** — the emitted event/metric names and the DESIGN.md
//!   §8 taxonomy tables agree in both directions;
//! * **section-table** — Eq. 1 (median thresholds, headroom, 60 Hz cap)
//!   holds for the device ladder, and the Fig. 5 doc table matches it.
//!
//! Everything is built on a hand-rolled Rust lexer ([`lexer`]) — no
//! `syn`, no `proc-macro2` — because the workspace builds offline with
//! no external crates. On top of the lexer, [`parse`] recovers item
//! nesting and call sites, and [`callgraph`] computes which functions
//! are reachable from the declared hot-path roots. Findings can be
//! suppressed per line with `// ccdem-lint: allow(<id>)` comments
//! ([`source`]) or absorbed by the committed `lint.allow` count ratchet
//! ([`baseline`]); a suppression that suppresses nothing and a budget
//! with slack are themselves findings, so the ratchet only tightens.

pub mod baseline;
pub mod callgraph;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod source;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, LintId};
use crate::lints::{
    alloc_hot_path, arith_cast, atomics_ordering, determinism, panic as panic_lint,
    section_table, taxonomy,
};
use crate::source::SourceFile;

/// The committed baseline file, at the workspace root.
pub const BASELINE_FILE: &str = "lint.allow";
/// The design document holding the §8 taxonomy tables.
pub const DESIGN_FILE: &str = "DESIGN.md";

/// How a lint run is configured.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Workspace root (the directory holding the `[workspace]`
    /// `Cargo.toml`, `DESIGN.md`, and `lint.allow`).
    pub root: PathBuf,
    /// Rewrite `lint.allow` to match the current findings instead of
    /// failing on them.
    pub fix_baseline: bool,
    /// Override for the DESIGN.md text (tests use this to prove the
    /// taxonomy lint fires when a documented name is removed).
    pub design_text: Option<String>,
}

impl LintOptions {
    /// Default options rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> LintOptions {
        LintOptions {
            root: root.into(),
            fix_baseline: false,
            design_text: None,
        }
    }
}

/// The outcome of a lint run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Findings that fail the run, sorted by file, line, and id.
    pub reported: Vec<Diagnostic>,
    /// Findings absorbed by the `lint.allow` baseline.
    pub baselined: Vec<Diagnostic>,
    /// Findings silenced by `// ccdem-lint: allow(…)` comments.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Whether `--fix-baseline` rewrote `lint.allow`.
    pub baseline_rewritten: bool,
    /// Analyzer-level numbers for `--stats`.
    pub stats: Stats,
}

/// Analyzer statistics for `ccdem lint --stats`.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Findings per family before suppression and baselining (so the
    /// counts describe what the analyzer saw, not what survived).
    pub family_counts: BTreeMap<LintId, usize>,
    /// Functions parsed across the workspace.
    pub fn_count: usize,
    /// Functions reachable from the hot-path roots.
    pub reachable_fns: usize,
    /// Total violation budget granted by `lint.allow`.
    pub baseline_total: usize,
}

impl Report {
    /// Whether the run passes.
    pub fn clean(&self) -> bool {
        self.reported.is_empty()
    }
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Runs every lint family over the workspace at `options.root`.
///
/// # Errors
///
/// Returns a message for configuration-level failures (unreadable root,
/// malformed `lint.allow`, unwritable baseline under `--fix-baseline`).
/// Per-file problems (lex errors, unreadable files) become `internal`
/// diagnostics instead, so one bad file cannot hide the rest.
pub fn run(options: &LintOptions) -> Result<Report, String> {
    let root = &options.root;
    let paths = workspace_sources(root)?;
    let files_scanned = paths.len();

    let mut files: BTreeMap<String, SourceFile> = BTreeMap::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for rel in &paths {
        let text = match fs::read_to_string(root.join(rel)) {
            Ok(text) => text,
            Err(err) => {
                diagnostics.push(Diagnostic::new(
                    LintId::Internal,
                    rel.clone(),
                    0,
                    format!("unreadable: {err}"),
                ));
                continue;
            }
        };
        match lexer::lex(&text) {
            Ok(lexed) => {
                let file = SourceFile::new(rel.clone(), crate_of(rel), lexed);
                files.insert(rel.clone(), file);
            }
            Err(err) => {
                diagnostics.push(Diagnostic::new(
                    LintId::Internal,
                    rel.clone(),
                    err.line,
                    format!("lexer error: {}", err.message),
                ));
            }
        }
    }

    // The cross-crate call graph: every function, with reachability
    // from the declared hot-path roots, gated by Cargo dependency
    // direction.
    let deps = workspace_deps(root);
    let graph = CallGraph::build(files.values(), &deps, callgraph::HOT_PATH_ROOTS);

    // Per-file families, plus the taxonomy emission sweep.
    let mut emissions = Vec::new();
    for file in files.values() {
        determinism::check(file, &mut diagnostics);
        panic_lint::check(file, &mut diagnostics);
        alloc_hot_path::check(file, &graph, &mut diagnostics);
        arith_cast::check(file, &mut diagnostics);
        atomics_ordering::check(file, &mut diagnostics);
        taxonomy::collect(file, &mut emissions);
    }

    // The taxonomy cross-check against DESIGN.md §8.
    let design_text = match &options.design_text {
        Some(text) => Some(text.clone()),
        None => match fs::read_to_string(root.join(DESIGN_FILE)) {
            Ok(text) => Some(text),
            Err(err) => {
                diagnostics.push(Diagnostic::new(
                    LintId::Internal,
                    DESIGN_FILE,
                    0,
                    format!("unreadable: {err}"),
                ));
                None
            }
        },
    };
    if let Some(design) = &design_text {
        taxonomy::check(design, DESIGN_FILE, &emissions, &mut diagnostics);
    }

    // The section-table invariants.
    section_table::check(
        files.get(section_table::REFRESH_PATH),
        files.get(section_table::SECTION_PATH),
        &mut diagnostics,
    );

    // Reachability-aware severity: a panic finding inside a function
    // reachable from a hot-path root can never be baselined — only a
    // documented line allow may silence it.
    for d in &mut diagnostics {
        if d.id == LintId::Panic && !d.hot {
            if let Some(witness) = graph.hot(&d.file, d.line) {
                d.hot = true;
                d.message.push_str(&format!(" [hot path: reachable from {witness}]"));
            }
        }
    }

    let mut family_counts: BTreeMap<LintId, usize> = BTreeMap::new();
    for d in &diagnostics {
        *family_counts.entry(d.id).or_insert(0) += 1;
    }

    // Line-level suppressions, tracking which allow entries fired so a
    // suppression that suppresses nothing becomes a finding itself.
    let before = diagnostics.len();
    let mut used_allows: BTreeSet<(String, usize)> = BTreeSet::new();
    diagnostics.retain(|d| {
        let Some(file) = files.get(&d.file) else {
            return true;
        };
        let hits: Vec<usize> = file.allow_indices(d.id, d.line).collect();
        if hits.is_empty() {
            return true;
        }
        for ix in hits {
            used_allows.insert((d.file.clone(), ix));
        }
        false
    });
    let suppressed = before - diagnostics.len();
    for file in files.values() {
        for (ix, allow) in file.allows().iter().enumerate() {
            if file.is_test_line(allow.comment_line) {
                continue;
            }
            if !used_allows.contains(&(file.path.clone(), ix)) {
                diagnostics.push(Diagnostic::new(
                    LintId::Internal,
                    file.path.clone(),
                    allow.comment_line,
                    format!(
                        "stale suppression: `allow({})` matches no finding; \
                         delete the comment or narrow it",
                        allow.id
                    ),
                ));
            }
        }
    }

    sort_diagnostics(&mut diagnostics);

    // The baseline ratchet. `--fix-baseline` rewrites the file to the
    // current findings (internal and hot-path findings are never
    // baselinable); otherwise a budget with slack is itself a finding,
    // so the ratchet only tightens.
    let baseline_path = root.join(BASELINE_FILE);
    let mut baseline_rewritten = false;
    let baseline = if options.fix_baseline {
        let baselinable: Vec<Diagnostic> = diagnostics
            .iter()
            .filter(|d| d.id != LintId::Internal && !d.hot)
            .cloned()
            .collect();
        let rendered = Baseline::render(&baselinable);
        fs::write(&baseline_path, &rendered)
            .map_err(|err| format!("cannot write {}: {err}", baseline_path.display()))?;
        baseline_rewritten = true;
        Baseline::parse(&rendered).map_err(|err| err.to_string())?
    } else {
        match fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text).map_err(|err| err.to_string())?,
            Err(_) => Baseline::default(),
        }
    };
    if !options.fix_baseline {
        let mut live: BTreeMap<(LintId, String), usize> = BTreeMap::new();
        for d in diagnostics.iter().filter(|d| !d.hot && d.id != LintId::Internal) {
            *live.entry((d.id, d.file.clone())).or_insert(0) += 1;
        }
        for ((id, file), budget) in baseline.entries() {
            let found = live.get(&(*id, file.clone())).copied().unwrap_or(0);
            if found < budget {
                diagnostics.push(Diagnostic::new(
                    LintId::Internal,
                    file.clone(),
                    0,
                    format!(
                        "stale baseline: lint.allow grants {budget} `{id}` \
                         finding(s) here but only {found} exist; run \
                         `ccdem lint --fix-baseline` to tighten the ratchet"
                    ),
                ));
            }
        }
        sort_diagnostics(&mut diagnostics);
    }
    let stats = Stats {
        family_counts,
        fn_count: graph.fn_count(),
        reachable_fns: graph.reachable_count(),
        baseline_total: baseline.total(),
    };
    let (mut reported, baselined) = baseline.apply(diagnostics);
    sort_diagnostics(&mut reported);

    Ok(Report {
        reported,
        baselined,
        suppressed,
        files_scanned,
        baseline_rewritten,
        stats,
    })
}

/// Direct `ccdem-*` dependencies per workspace crate, scraped from the
/// `[dependencies]` sections of the crate manifests (dev-dependencies
/// are excluded: test-only edges must not make cold code hot). Missing
/// manifests — miniature test workspaces — yield empty sets, which
/// restricts call resolution to same-crate edges there.
fn workspace_deps(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut out = BTreeMap::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.filter_map(Result::ok) {
            let dir = entry.path();
            if !dir.is_dir() {
                continue;
            }
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            out.insert(name, manifest_deps(&dir.join("Cargo.toml")));
        }
    }
    out.insert("ccdem".to_string(), manifest_deps(&root.join("Cargo.toml")));
    out
}

/// The `ccdem-*` dependency names in a manifest's `[dependencies]`
/// section, mapped to crate directory names (`ccdem-obs` → `obs`).
fn manifest_deps(path: &Path) -> BTreeSet<String> {
    let Ok(text) = fs::read_to_string(path) else {
        return BTreeSet::new();
    };
    let mut out = BTreeSet::new();
    let mut in_deps = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            in_deps = trimmed == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some(name) = trimmed.split(['.', ' ', '=']).next() {
            if let Some(dep) = name.strip_prefix("ccdem-") {
                out.insert(dep.to_string());
            }
        }
    }
    out
}

fn sort_diagnostics(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.id, &a.message).cmp(&(&b.file, b.line, b.id, &b.message))
    });
}

/// The crate a repo-relative path belongs to: the directory name under
/// `crates/`, or `ccdem` for the root package's `src/`.
fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("ccdem")
        .to_string()
}

/// Every `.rs` file under `crates/*/src/` and `src/`, repo-relative with
/// forward slashes, sorted. Test directories (`tests/`, `benches/`) are
/// not scanned: the lints only govern library code, and integration
/// tests assert on fixture files that deliberately violate them.
fn workspace_sources(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(err) => return Err(format!("cannot read {}: {err}", crates_dir.display())),
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), root, &mut out);
    }
    collect_rs(&root.join("src"), root, &mut out);
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/core/src/meter.rs"), "core");
        assert_eq!(crate_of("src/bin/ccdem.rs"), "ccdem");
        assert_eq!(crate_of("src/lib.rs"), "ccdem");
    }

    #[test]
    fn find_root_walks_up() {
        // The crate's own manifest does not declare a workspace; the
        // repo root's does.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert_ne!(root, here);
    }

    #[test]
    fn sort_is_stable_across_fields() {
        let mut d = vec![
            Diagnostic::new(LintId::Panic, "b.rs", 1, "m"),
            Diagnostic::new(LintId::Panic, "a.rs", 9, "m"),
            Diagnostic::new(LintId::Determinism, "a.rs", 9, "m"),
        ];
        sort_diagnostics(&mut d);
        assert_eq!(d.first().map(|x| x.id), Some(LintId::Determinism));
        assert_eq!(d.last().map(|x| x.file.as_str()), Some("b.rs"));
    }
}
