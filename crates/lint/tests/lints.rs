//! Fixture-corpus tests: every lint family against known-good and
//! known-bad inputs, asserting exact diagnostic IDs and line numbers,
//! plus end-to-end runs of the `ccdem-lint` binary against miniature
//! workspaces seeded with one violation per family.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use ccdem_lint::diag::{Diagnostic, LintId};
use ccdem_lint::lexer::lex;
use ccdem_lint::lints::{determinism, panic as panic_lint, section_table, taxonomy};
use ccdem_lint::source::SourceFile;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lexes a fixture under a crate name and applies the same line-level
/// suppression filtering the driver does.
fn check_fixture(
    name: &str,
    crate_name: &str,
    run: impl Fn(&SourceFile, &mut Vec<Diagnostic>),
) -> Vec<(LintId, u32)> {
    let lexed = lex(&fixture(name)).expect("fixture lexes");
    let file = SourceFile::new(name.to_string(), crate_name.to_string(), lexed);
    let mut out = Vec::new();
    run(&file, &mut out);
    out.retain(|d| !file.is_allowed(d.id, d.line));
    let mut pairs: Vec<(LintId, u32)> = out.iter().map(|d| (d.id, d.line)).collect();
    pairs.sort();
    pairs
}

#[test]
fn panic_fixture_flags_exact_lines() {
    let pairs = check_fixture("panic_violations.rs", "core", panic_lint::check);
    assert_eq!(
        pairs,
        vec![
            (LintId::Panic, 11), // v[0]
            (LintId::Panic, 12), // .unwrap()
            (LintId::Panic, 13), // .expect(…)
            (LintId::Panic, 15), // panic!
        ],
        "strings containing unwrap(), the RangeFull slice, the allow-\
         suppressed index, and the #[cfg(test)] module must not be flagged"
    );
}

#[test]
fn panic_fixture_is_exempt_in_bench_crates() {
    let pairs = check_fixture("panic_violations.rs", "bench", panic_lint::check);
    assert!(pairs.is_empty(), "bench crates are panic-exempt: {pairs:?}");
}

#[test]
fn determinism_fixture_flags_exact_lines() {
    let pairs = check_fixture("determinism_violations.rs", "core", determinism::check);
    assert_eq!(
        pairs,
        vec![
            (LintId::Determinism, 10), // use HashMap
            (LintId::Determinism, 11), // use Instant
            (LintId::Determinism, 14), // Instant::now
            (LintId::Determinism, 15), // thread::spawn
            (LintId::Determinism, 16), // HashMap type + constructor
            (LintId::Determinism, 16),
        ],
        "the allow-suppressed telemetry block and the test-module HashSet \
         must not be flagged"
    );
}

#[test]
fn determinism_skips_non_result_affecting_crates() {
    let pairs = check_fixture("determinism_violations.rs", "obs", determinism::check);
    assert!(pairs.is_empty(), "obs is not result-affecting: {pairs:?}");
}

#[test]
fn determinism_skips_whitelisted_files() {
    let lexed = lex(&fixture("determinism_violations.rs")).expect("fixture lexes");
    let file = SourceFile::new(
        "crates/simkit/src/parallel.rs".to_string(),
        "simkit".to_string(),
        lexed,
    );
    let mut out = Vec::new();
    determinism::check(&file, &mut out);
    assert!(out.is_empty(), "whitelisted host-timing file: {out:?}");
}

#[test]
fn determinism_whitelist_covers_every_timing_harness() {
    // Each whitelist entry must silence the lint for exactly that path —
    // including the PR 5 scratch-reuse harness — while the same tokens
    // in any sibling file still flag.
    for path in determinism::WHITELIST_FILES {
        let lexed = lex(&fixture("determinism_violations.rs")).expect("fixture lexes");
        let file = SourceFile::new(path.to_string(), "experiments".to_string(), lexed);
        let mut out = Vec::new();
        determinism::check(&file, &mut out);
        assert!(out.is_empty(), "{path} is whitelisted: {out:?}");
    }
    assert!(
        determinism::WHITELIST_FILES.contains(&"crates/experiments/src/perf_sweep.rs"),
        "the scratch-reuse harness must stay whitelisted"
    );
    let lexed = lex(&fixture("determinism_violations.rs")).expect("fixture lexes");
    let sibling = SourceFile::new(
        "crates/experiments/src/sweep.rs".to_string(),
        "experiments".to_string(),
        lexed,
    );
    let mut out = Vec::new();
    determinism::check(&sibling, &mut out);
    assert!(!out.is_empty(), "non-whitelisted sibling must still flag");
}

#[test]
fn clean_fixture_passes_every_family() {
    assert!(check_fixture("clean.rs", "core", panic_lint::check).is_empty());
    assert!(check_fixture("clean.rs", "core", determinism::check).is_empty());
    let lexed = lex(&fixture("clean.rs")).expect("fixture lexes");
    let file = SourceFile::new("clean.rs".into(), "core".into(), lexed);
    let mut emissions = Vec::new();
    taxonomy::collect(&file, &mut emissions);
    assert!(emissions.is_empty());
}

const MINI_DESIGN: &str = "\
# Design

## 8. Observability

### Event taxonomy

| name | purpose |
|---|---|
| `run.start` | run started |
| `panel.stale` | documented but never emitted |

### Metric taxonomy

| name | kind |
|---|---|
| `meter.frames` | counter |
";

#[test]
fn taxonomy_fixture_flags_both_directions() {
    let lexed = lex(&fixture("taxonomy_mismatch.rs")).expect("fixture lexes");
    let file = SourceFile::new("taxonomy_mismatch.rs".into(), "core".into(), lexed);
    let mut emissions = Vec::new();
    taxonomy::collect(&file, &mut emissions);
    let mut out = Vec::new();
    taxonomy::check(MINI_DESIGN, "DESIGN.md", &emissions, &mut out);

    let mut pairs: Vec<(String, u32)> = out.iter().map(|d| (d.file.clone(), d.line)).collect();
    pairs.sort();
    let stale_row = MINI_DESIGN
        .lines()
        .position(|l| l.contains("panel.stale"))
        .expect("row present") as u32
        + 1;
    assert_eq!(
        pairs,
        vec![
            ("DESIGN.md".to_string(), stale_row), // documented, never emitted
            ("taxonomy_mismatch.rs".to_string(), 6), // governor.mystery
            ("taxonomy_mismatch.rs".to_string(), 7), // panel.ghost
            ("taxonomy_mismatch.rs".to_string(), 9), // meter.phantom_px
            ("taxonomy_mismatch.rs".to_string(), 10), // input.mystery
        ],
        "test-module emissions must not count; documented names must all \
         be emitted: {out:?}"
    );
    assert!(out.iter().all(|d| d.id == LintId::ObsTaxonomy));
}

#[test]
fn taxonomy_lint_is_blind_to_its_own_crate() {
    let lexed = lex(&fixture("taxonomy_mismatch.rs")).expect("fixture lexes");
    let file = SourceFile::new("x.rs".into(), "lint".into(), lexed);
    let mut emissions = Vec::new();
    taxonomy::collect(&file, &mut emissions);
    assert!(emissions.is_empty());
}

#[test]
fn eq1_thresholds_match_paper_fig5() {
    assert_eq!(
        section_table::eq1_thresholds(&[20, 24, 30, 40, 60]),
        vec![10.0, 22.0, 27.0, 35.0, 50.0]
    );
}

// --- acceptance: the real workspace, with and without tampering ---

fn repo_root() -> PathBuf {
    ccdem_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the lint crate")
}

#[test]
fn real_workspace_is_clean() {
    let report = ccdem_lint::run(&ccdem_lint::LintOptions::new(repo_root())).expect("lint runs");
    assert!(
        report.clean(),
        "the committed workspace must lint clean:\n{}",
        report
            .reported
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "scan looks truncated");
}

#[test]
fn removing_a_documented_event_fails_the_lint() {
    let root = repo_root();
    let design = fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md");
    let names = taxonomy::documented_names(&design);
    // Pick a name documented exactly once, so deleting its row really
    // undocuments it (event and metric namespaces are checked jointly).
    let victim = names
        .iter()
        .find(|d| names.iter().filter(|o| o.name == d.name).count() == 1)
        .expect("a uniquely documented name");
    let pruned: String = design
        .lines()
        .enumerate()
        .filter(|(i, _)| (i + 1) as u32 != victim.line)
        .map(|(_, l)| format!("{l}\n"))
        .collect();

    let mut options = ccdem_lint::LintOptions::new(root);
    options.design_text = Some(pruned);
    let report = ccdem_lint::run(&options).expect("lint runs");
    assert!(
        report
            .reported
            .iter()
            .any(|d| d.id == LintId::ObsTaxonomy && d.message.contains(&victim.name)),
        "deleting the `{}` row from DESIGN.md must fail the taxonomy lint; got {:?}",
        victim.name,
        report.reported
    );
}

// --- end-to-end: the ccdem-lint binary against seeded mini-workspaces ---

/// A minimal valid workspace the lint accepts end to end.
struct MiniWorkspace {
    root: PathBuf,
}

impl MiniWorkspace {
    fn new(tag: &str) -> MiniWorkspace {
        let root = std::env::temp_dir().join(format!(
            "ccdem-lint-e2e-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        let w = MiniWorkspace { root };
        w.write("Cargo.toml", "[workspace]\nmembers = []\n");
        w.write(
            "DESIGN.md",
            "# Mini\n\n## 8. Observability\n\n### Event taxonomy\n\n\
             | name | purpose |\n|---|---|\n| `app.tick` | tick |\n\n\
             ### Metric taxonomy\n\n| name | kind |\n|---|---|\n\
             | `app.ticks` | counter |\n",
        );
        w.write(
            "crates/core/src/lib.rs",
            "pub fn run(obs: &Obs, reg: &Registry, now: SimTime) {\n    \
             obs.emit(\"app.tick\", now, |_| {});\n    \
             let _c = reg.counter(\"app.ticks\");\n}\n",
        );
        w.write(
            "crates/panel/src/refresh.rs",
            "pub struct RefreshRate(u32);\n\
             impl RefreshRate {\n    \
             pub const HZ_20: RefreshRate = RefreshRate(20);\n    \
             pub const HZ_60: RefreshRate = RefreshRate(60);\n}\n\
             pub fn galaxy_s3() -> (RefreshRate, RefreshRate) {\n    \
             (RefreshRate::HZ_20, RefreshRate::HZ_60)\n}\n",
        );
        w.write(
            "crates/core/src/section.rs",
            "//! | 0 \u{2013} 10 | 20 Hz |\n\
             //! | 10 \u{2013} 60 | 60 Hz |\n\
             pub fn new(rates: &[f64]) -> Vec<f64> {\n    \
             let mut prev = 0.0;\n    \
             let mut out = Vec::new();\n    \
             for r in rates {\n        \
             // ccdem-lint: allow(arith-cast) \u{2014} f64 midpoint, not fixed point\n        \
             out.push((prev + r) / 2.0);\n        \
             prev = *r;\n    }\n    out\n}\n",
        );
        w
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("mkdir");
        }
        fs::write(&path, contents).expect("write");
    }

    fn lint(&self) -> (i32, String) {
        self.lint_args(&[])
    }

    fn lint_args(&self, args: &[&str]) -> (i32, String) {
        let output = Command::new(env!("CARGO_BIN_EXE_ccdem-lint"))
            .args(args)
            .current_dir(&self.root)
            .output()
            .expect("run ccdem-lint");
        (
            output.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&output.stdout).into_owned(),
        )
    }

    fn read(&self, rel: &str) -> String {
        fs::read_to_string(self.root.join(rel)).expect("read")
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn e2e_clean_workspace_exits_zero() {
    let w = MiniWorkspace::new("clean");
    let (code, stdout) = w.lint();
    assert_eq!(code, 0, "expected clean, got:\n{stdout}");
}

#[test]
fn e2e_seeded_panic_violation_fails() {
    let w = MiniWorkspace::new("panic");
    let w_file = "crates/core/src/bad.rs";
    w.write(w_file, "pub fn first(v: &[u32]) -> u32 {\n    v[0]\n}\n");
    let (code, stdout) = w.lint();
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(stdout.contains("[panic]") && stdout.contains("bad.rs:2"), "{stdout}");
}

#[test]
fn e2e_seeded_determinism_violation_fails() {
    let w = MiniWorkspace::new("det");
    w.write(
        "crates/core/src/bad.rs",
        "use std::collections::HashMap;\npub type Cache = HashMap<u32, u32>;\n",
    );
    let (code, stdout) = w.lint();
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(stdout.contains("[determinism]"), "{stdout}");
}

#[test]
fn e2e_seeded_taxonomy_violation_fails() {
    let w = MiniWorkspace::new("tax");
    w.write(
        "crates/core/src/bad.rs",
        "pub fn leak(obs: &Obs, now: SimTime) {\n    \
         obs.emit(\"ghost.event\", now, |_| {});\n}\n",
    );
    let (code, stdout) = w.lint();
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(
        stdout.contains("[obs-taxonomy]") && stdout.contains("ghost.event"),
        "{stdout}"
    );
}

#[test]
fn e2e_seeded_section_table_violation_fails() {
    let w = MiniWorkspace::new("sect");
    // Wrong Fig. 5 row: the 20 Hz section must end at the Eq. 1 median
    // threshold 10, not 15.
    w.write(
        "crates/core/src/section.rs",
        "//! | 0 \u{2013} 15 | 20 Hz |\n\
         //! | 15 \u{2013} 60 | 60 Hz |\n\
         pub fn new(rates: &[f64]) -> Vec<f64> {\n    \
         let mut prev = 0.0;\n    \
         let mut out = Vec::new();\n    \
         for r in rates {\n        \
         // ccdem-lint: allow(arith-cast) \u{2014} f64 midpoint, not fixed point\n        \
         out.push((prev + r) / 2.0);\n        \
         prev = *r;\n    }\n    out\n}\n",
    );
    let (code, stdout) = w.lint();
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(stdout.contains("[section-table]"), "{stdout}");
}

#[test]
fn e2e_stale_suppression_flags_and_stale_budget_tightens() {
    let w = MiniWorkspace::new("stale");
    // An allow comment with nothing to suppress is itself a finding.
    w.write(
        "crates/core/src/fine.rs",
        "pub fn f(v: &[u32]) -> u32 {\n    \
         // ccdem-lint: allow(panic) \u{2014} nothing here panics any more\n    \
         v.first().copied().unwrap_or(0)\n}\n",
    );
    // A budget larger than the live finding count is stale too.
    w.write(
        "lint.allow",
        "# test baseline\npanic crates/core/src/fine.rs 3\n",
    );
    let (code, stdout) = w.lint();
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(stdout.contains("stale suppression"), "{stdout}");
    assert!(stdout.contains("stale baseline"), "{stdout}");

    // --fix-baseline tightens the budget to the live count (zero here:
    // the file's entry disappears entirely).
    let (fix_code, _) = w.lint_args(&["--fix-baseline"]);
    assert_eq!(fix_code, 1, "the stale allow comment still reports");
    assert!(
        !w.read("lint.allow").contains("fine.rs"),
        "budget must drop to the live count: {}",
        w.read("lint.allow")
    );
}

#[test]
fn e2e_seeded_alloc_hot_path_violation_fails() {
    let w = MiniWorkspace::new("alloc");
    // `Governor::decide` is a hot-path root; the Vec::new inside the
    // helper it calls is reachable and must flag, with a witness naming
    // the root.
    w.write(
        "crates/core/src/governor.rs",
        "pub struct Governor;\n\
         impl Governor {\n    \
         pub fn decide(&mut self) {\n        \
         scratch_rates();\n    }\n}\n\
         fn scratch_rates() -> Vec<f64> {\n    \
         Vec::new()\n}\n",
    );
    let (code, stdout) = w.lint();
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(
        stdout.contains("[alloc-hot-path]") && stdout.contains("Governor::decide"),
        "{stdout}"
    );
}

#[test]
fn e2e_cold_alloc_does_not_flag() {
    let w = MiniWorkspace::new("alloc-cold");
    // Same allocation, but nothing reachable from a root calls it.
    w.write(
        "crates/core/src/scratch.rs",
        "pub fn scratch_rates() -> Vec<f64> {\n    Vec::new()\n}\n",
    );
    let (code, stdout) = w.lint();
    assert_eq!(code, 0, "cold allocations are fine:\n{stdout}");
}

#[test]
fn e2e_seeded_arith_cast_violation_fails() {
    let w = MiniWorkspace::new("arith");
    w.write(
        "crates/core/src/section.rs",
        "//! | 0 \u{2013} 10 | 20 Hz |\n\
         //! | 10 \u{2013} 60 | 60 Hz |\n\
         pub fn quantize(v: f64, scale: u64) -> u64 {\n    \
         (v * scale as f64) as u64\n}\n",
    );
    let (code, stdout) = w.lint();
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(
        stdout.contains("[arith-cast]") && stdout.contains("as u64"),
        "{stdout}"
    );
}

#[test]
fn e2e_seeded_atomics_ordering_violation_fails() {
    let w = MiniWorkspace::new("atomics");
    // An unjustified bare SeqCst in crates/obs must flag; the justified
    // Relaxed two lines up must not.
    w.write(
        "crates/obs/src/counter.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         pub fn bump(c: &AtomicU64) -> u64 {\n    \
         // ordering: relaxed \u{2014} independent counter, no ordering needed\n    \
         c.fetch_add(1, Ordering::Relaxed);\n    \
         c.load(Ordering::SeqCst)\n}\n",
    );
    let (code, stdout) = w.lint();
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(
        stdout.contains("[atomics-ordering]") && stdout.contains("counter.rs:5"),
        "the unjustified SeqCst load (and only it) must flag:\n{stdout}"
    );
    assert!(!stdout.contains("counter.rs:4"), "{stdout}");
}

#[test]
fn e2e_hot_panic_is_never_baselinable() {
    let w = MiniWorkspace::new("hot-panic");
    // A panic reachable from a root is internal severity: a lint.allow
    // budget cannot absorb it.
    w.write(
        "crates/core/src/governor.rs",
        "pub struct Governor;\n\
         impl Governor {\n    \
         pub fn decide(&mut self, v: &[u32]) -> u32 {\n        \
         v[0]\n    }\n}\n",
    );
    w.write(
        "lint.allow",
        "# test baseline\npanic crates/core/src/governor.rs 1\n",
    );
    let (code, stdout) = w.lint();
    assert_eq!(code, 1, "hot panic must not be baselinable:\n{stdout}");
    assert!(
        stdout.contains("[panic]") && stdout.contains("hot path"),
        "{stdout}"
    );
}

#[test]
fn e2e_baseline_absorbs_then_ratchets() {
    let w = MiniWorkspace::new("baseline");
    w.write("crates/core/src/bad.rs", "pub fn f(v: &[u32]) -> u32 {\n    v[0]\n}\n");
    w.write(
        "lint.allow",
        "# test baseline\npanic crates/core/src/bad.rs 1\n",
    );
    let (code, stdout) = w.lint();
    assert_eq!(code, 0, "one finding within budget:\n{stdout}");

    // A second violation exceeds the budget: the whole group reports.
    w.write(
        "crates/core/src/bad.rs",
        "pub fn f(v: &[u32]) -> u32 {\n    v[0] + v[1]\n}\n",
    );
    let (code, stdout) = w.lint();
    assert_eq!(code, 1, "over budget:\n{stdout}");
    assert!(stdout.contains("exceed the lint.allow budget"), "{stdout}");
}
