//! Known-bad determinism fixture, lexed by `tests/lints.rs` with a
//! result-affecting crate name. The HashMap line doubles as the
//! regression note for the workspace rule that result-affecting maps are
//! ordered: iteration order of a `HashMap` is randomized per process, so
//! any `RunResult` derived from iterating one diverges across runs. Use
//! `BTreeMap` (as `crates/metrics/src/table.rs` and the workloads crate
//! do) or sort before iterating.
//! Lexed by `tests/lints.rs`; never compiled.

use std::collections::HashMap; // line 10: HashMap
use std::time::Instant; // line 11: Instant

pub fn wall_clock_in_results() -> u64 {
    let t = Instant::now(); // line 14: Instant
    std::thread::spawn(|| 7); // line 15: thread::spawn
    let mut m: HashMap<u32, u32> = HashMap::new(); // line 16: HashMap x2
    m.insert(1, 2);
    t.elapsed().as_micros() as u64 + m.len() as u64
}

pub fn telemetry_only() -> u64 {
    // ccdem-lint: allow(determinism) — feeds a host-timing histogram,
    // never a RunResult
    let t = std::time::Instant::now();
    t.elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_code_may_hash() {
        let mut s = HashSet::new();
        s.insert(1);
        assert_eq!(s.len(), 1);
    }
}
