//! Known-good fixture: idiomatic library code none of the lint families
//! should flag.

use std::collections::BTreeMap;

/// Sums the first `n` values, missing entries as zero.
pub fn sum_first(map: &BTreeMap<u32, u32>, n: u32) -> u64 {
    (0..n)
        .map(|k| u64::from(map.get(&k).copied().unwrap_or(0)))
        .sum()
}

/// Splits a slice at its midpoint without indexing.
pub fn halves(v: &[u8]) -> (&[u8], &[u8]) {
    v.split_at(v.len() / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums() {
        let m = BTreeMap::from([(0, 1), (1, 2)]);
        assert_eq!(sum_first(&m, 3), 3);
    }
}
