//! Known-bad panic-policy fixture. NOT compiled into the crate — read
//! and lexed by `tests/lints.rs`, which asserts the exact diagnostic
//! lines marked below.
//!
//! The string literal "call .unwrap() here" and the doc mention of
//! `unwrap()` above must NOT be flagged: they are data, not code.

pub fn library_code(v: &[u32], o: Option<u32>) -> u32 {
    let msg = "call .unwrap() here";
    let raw = r#"also .unwrap() and v[0] in a raw string"#;
    let first = v[0]; // line 11: index expression
    let second = o.unwrap(); // line 12: unwrap
    let third = o.expect("present"); // line 13: expect
    if msg.is_empty() && raw.is_empty() {
        panic!("line 15: panic macro");
    }
    let all = &v[..]; // RangeFull: never flagged
    let allowed = v[1]; // ccdem-lint: allow(panic) — bounds checked above
    first + second + third + allowed + all.len() as u32
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = vec![1u32];
        assert_eq!(v[0], super::library_code(&v, Some(1)).min(1));
        Some(3u32).unwrap();
    }
}
