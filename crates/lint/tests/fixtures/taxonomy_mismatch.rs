//! Taxonomy fixture, lexed by `tests/lints.rs` against a miniature
//! design table that documents `run.start` and `meter.frames` only.

pub fn emits(obs: &Obs, reg: &Registry, now: SimTime) {
    obs.emit("run.start", now, |_| {}); // documented
    obs.emit("governor.mystery", now, |_| {}); // line 6: undocumented event
    let _e = Event::new("panel.ghost"); // line 7: undocumented event
    let _c = reg.counter("meter.frames"); // documented
    let _g = reg.gauge("meter.phantom_px"); // line 9: undocumented metric
    obs_event!(obs, now, "input.mystery", |_| {}); // line 10: undocumented event
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_emissions_are_ignored() {
        obs.emit("test.only.event", now, |_| {});
    }
}
