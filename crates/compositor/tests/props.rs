//! Property-based tests for the compositor's latching semantics.

use ccdem_compositor::flinger::{ComposeOutcome, SurfaceFlinger};
use ccdem_pixelbuf::geometry::Resolution;
use ccdem_pixelbuf::pixel::Pixel;
use ccdem_simkit::time::SimTime;
use proptest::prelude::*;

/// A scripted interleaving of submissions and V-Sync edges.
#[derive(Debug, Clone)]
enum Step {
    Submit { content: bool },
    Vsync,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            any::<bool>().prop_map(|content| Step::Submit { content }),
            Just(Step::Vsync),
        ],
        1..200,
    )
}

proptest! {
    /// Conservation: every submission is either still pending or was
    /// coalesced into exactly one composition; compositions never exceed
    /// V-Sync edges.
    #[test]
    fn submissions_conserved(steps in arb_steps()) {
        let mut sf = SurfaceFlinger::new(Resolution::new(8, 8));
        let id = sf.create_surface("prop");
        let mut submitted = 0usize;
        let mut coalesced_total = 0usize;
        let mut edges = 0usize;
        let mut composed = 0usize;
        for (i, step) in steps.iter().enumerate() {
            let t = SimTime::from_millis(i as u64);
            match step {
                Step::Submit { content } => {
                    if *content {
                        sf.surface_mut(id).unwrap().buffer_mut().fill(Pixel::grey((i % 250) as u8 + 1));
                    }
                    sf.submit(id, t, *content).unwrap();
                    submitted += 1;
                }
                Step::Vsync => {
                    edges += 1;
                    if let ComposeOutcome::Composed { coalesced, .. } = sf.compose(t) {
                        composed += 1;
                        coalesced_total += coalesced;
                    }
                }
            }
        }
        let pending = if sf.has_pending() {
            submitted - coalesced_total
        } else {
            0
        };
        prop_assert_eq!(coalesced_total + pending, submitted);
        prop_assert!(composed <= edges);
        prop_assert_eq!(sf.stats().submissions().count(), submitted);
        prop_assert_eq!(sf.stats().composed().count(), composed);
    }

    /// Content accounting: composed-content frames never exceed content
    /// submissions, and a composed frame carries content iff some
    /// coalesced submission did.
    #[test]
    fn content_flag_accounting(steps in arb_steps()) {
        let mut sf = SurfaceFlinger::new(Resolution::new(8, 8));
        let id = sf.create_surface("prop");
        let mut pending_content = false;
        for (i, step) in steps.iter().enumerate() {
            let t = SimTime::from_millis(i as u64);
            match step {
                Step::Submit { content } => {
                    sf.submit(id, t, *content).unwrap();
                    pending_content |= content;
                }
                Step::Vsync => {
                    match sf.compose(t) {
                        ComposeOutcome::Composed { content_changed, .. } => {
                            prop_assert_eq!(content_changed, pending_content);
                            pending_content = false;
                        }
                        ComposeOutcome::Idle => {
                            prop_assert!(!pending_content);
                        }
                    }
                }
            }
        }
        prop_assert!(
            sf.stats().content_composed().count() <= sf.stats().content_submissions().count()
        );
    }

    /// Generation monotonicity: every composition bumps the framebuffer
    /// generation exactly once; idle edges never change it.
    #[test]
    fn generation_tracks_compositions(steps in arb_steps()) {
        let mut sf = SurfaceFlinger::new(Resolution::new(4, 4));
        let id = sf.create_surface("prop");
        let mut last_gen = sf.framebuffer().generation();
        for (i, step) in steps.iter().enumerate() {
            let t = SimTime::from_millis(i as u64);
            match step {
                Step::Submit { content } => {
                    // Submission alone never touches the framebuffer.
                    sf.submit(id, t, *content).unwrap();
                    prop_assert_eq!(sf.framebuffer().generation(), last_gen);
                }
                Step::Vsync => {
                    let before = sf.framebuffer().generation();
                    match sf.compose(t) {
                        ComposeOutcome::Composed { .. } => {
                            prop_assert!(sf.framebuffer().generation() > before);
                        }
                        ComposeOutcome::Idle => {
                            prop_assert_eq!(sf.framebuffer().generation(), before);
                        }
                    }
                    last_gen = sf.framebuffer().generation();
                }
            }
        }
    }
}
