//! Application surfaces.
//!
//! In Android, every window renders into its own *surface*; Surface
//! Manager (SurfaceFlinger) combines the surfaces into the framebuffer
//! (paper §2.1). Here each surface owns a full-resolution buffer the
//! application draws into, plus a z-order and visibility flag.

use std::fmt;

use ccdem_pixelbuf::buffer::FrameBuffer;
use ccdem_pixelbuf::geometry::{Rect, Resolution};

/// Identifies a surface within one compositor.
///
/// # Examples
///
/// ```
/// use ccdem_compositor::surface::SurfaceId;
///
/// let id = SurfaceId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SurfaceId(usize);

impl SurfaceId {
    /// Creates an id from a raw index.
    pub const fn new(index: usize) -> SurfaceId {
        SurfaceId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SurfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "surface#{}", self.0)
    }
}

/// One application window's rendering target.
#[derive(Debug, Clone)]
pub struct Surface {
    id: SurfaceId,
    label: String,
    buffer: FrameBuffer,
    bounds: Rect,
    z_order: i32,
    visible: bool,
    opaque: bool,
    layout_generation: u64,
}

impl Surface {
    /// Creates a visible, opaque, full-screen surface at z-order 0.
    pub fn new(id: SurfaceId, label: impl Into<String>, resolution: Resolution) -> Surface {
        Surface::with_buffer(id, label, FrameBuffer::new(resolution))
    }

    /// [`new`](Self::new) with a caller-provided buffer — typically one
    /// rebuilt from recycled storage ([`FrameBuffer::recycled`]), which is
    /// indistinguishable from a fresh buffer. The surface covers the
    /// buffer's full resolution.
    pub fn with_buffer(id: SurfaceId, label: impl Into<String>, buffer: FrameBuffer) -> Surface {
        Surface {
            id,
            label: label.into(),
            bounds: buffer.resolution().bounds(),
            buffer,
            z_order: 0,
            visible: true,
            opaque: true,
            layout_generation: 0,
        }
    }

    /// Consumes the surface, returning its buffer for recycling.
    pub fn into_buffer(self) -> FrameBuffer {
        self.buffer
    }

    /// The surface id.
    pub fn id(&self) -> SurfaceId {
        self.id
    }

    /// Human-readable label (usually the app name).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The surface's pixel buffer.
    pub fn buffer(&self) -> &FrameBuffer {
        &self.buffer
    }

    /// Mutable access for the owning application to draw into.
    pub fn buffer_mut(&mut self) -> &mut FrameBuffer {
        &mut self.buffer
    }

    /// The screen region this surface occupies; composition touches only
    /// these pixels. Defaults to the full screen.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Restricts the surface to a screen region (a status bar, a
    /// picture-in-picture window). The region is clipped to the screen.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` lies entirely off-screen.
    pub fn set_bounds(&mut self, bounds: Rect) {
        let clipped = bounds
            .clipped_to(self.buffer.resolution())
            // ccdem-lint: allow(panic) — documented `# Panics` contract
            .expect("surface bounds must intersect the screen");
        self.bounds = clipped;
        self.layout_generation += 1;
    }

    /// Composition order; higher z composes on top.
    pub fn z_order(&self) -> i32 {
        self.z_order
    }

    /// Sets the composition order.
    pub fn set_z_order(&mut self, z: i32) {
        self.z_order = z;
        self.layout_generation += 1;
    }

    /// Whether the surface participates in composition.
    pub fn is_visible(&self) -> bool {
        self.visible
    }

    /// Shows or hides the surface.
    pub fn set_visible(&mut self, visible: bool) {
        self.visible = visible;
        self.layout_generation += 1;
    }

    /// Whether composition may copy instead of alpha-blend this surface.
    pub fn is_opaque(&self) -> bool {
        self.opaque
    }

    /// Marks the surface as translucent (alpha-blended) or opaque.
    pub fn set_opaque(&mut self, opaque: bool) {
        self.opaque = opaque;
        self.layout_generation += 1;
    }

    /// Counts bounds/z-order/visibility/opacity changes. The compositor
    /// compares the sum across surfaces between composes: while it is
    /// stable, composition restricted to the surfaces' accumulated damage
    /// produces the same framebuffer as a full recompose, so the
    /// compositor may take the incremental path.
    pub fn layout_generation(&self) -> u64 {
        self.layout_generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdem_pixelbuf::pixel::Pixel;

    #[test]
    fn surface_defaults() {
        let s = Surface::new(SurfaceId::new(0), "app", Resolution::new(4, 4));
        assert!(s.is_visible());
        assert!(s.is_opaque());
        assert_eq!(s.z_order(), 0);
        assert_eq!(s.label(), "app");
    }

    #[test]
    fn drawing_goes_through_buffer_mut() {
        let mut s = Surface::new(SurfaceId::new(1), "app", Resolution::new(2, 2));
        s.buffer_mut().fill(Pixel::WHITE);
        assert_eq!(s.buffer().pixel(1, 1), Pixel::WHITE);
    }

    #[test]
    fn bounds_default_full_screen_and_clip() {
        let mut s = Surface::new(SurfaceId::new(0), "bar", Resolution::new(10, 20));
        assert_eq!(s.bounds(), Rect::new(0, 0, 10, 20));
        s.set_bounds(Rect::new(0, 0, 50, 3));
        assert_eq!(s.bounds(), Rect::new(0, 0, 10, 3));
    }

    #[test]
    #[should_panic(expected = "intersect the screen")]
    fn off_screen_bounds_rejected() {
        let mut s = Surface::new(SurfaceId::new(0), "bar", Resolution::new(10, 10));
        s.set_bounds(Rect::new(100, 100, 4, 4));
    }

    #[test]
    fn id_round_trips() {
        assert_eq!(SurfaceId::new(7).index(), 7);
        assert_eq!(SurfaceId::new(7).to_string(), "surface#7");
    }
}
