//! The surface manager ("SurfaceFlinger").
//!
//! Applications submit frames whenever they like; the compositor latches
//! pending submissions and performs at most one framebuffer update per
//! V-Sync edge. That latching is V-Sync throttling: it is what caps the
//! frame rate at the refresh rate (paper §2.1), and what makes the content
//! rate unobservable above the refresh rate (paper §3.2) — the feedback
//! the section table is designed around.

use std::fmt;

use ccdem_pixelbuf::buffer::FrameBuffer;
use ccdem_pixelbuf::damage::DamageRegion;
use ccdem_pixelbuf::geometry::Resolution;
use ccdem_pixelbuf::pool::PixelPool;
use ccdem_simkit::time::SimTime;

use crate::stats::FrameStats;
use crate::surface::{Surface, SurfaceId};

/// Error returned for operations on an unknown surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownSurfaceError {
    /// The id that was not found.
    pub id: SurfaceId,
}

impl fmt::Display for UnknownSurfaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {}", self.id)
    }
}

impl std::error::Error for UnknownSurfaceError {}

/// The result of one V-Sync composition opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComposeOutcome {
    /// No submissions were pending; the framebuffer was left untouched.
    Idle,
    /// Pending submissions were composed into the framebuffer.
    Composed {
        /// Whether any coalesced submission carried changed content.
        content_changed: bool,
        /// How many submissions were coalesced into this frame.
        coalesced: usize,
        /// The framebuffer damage this composition produced — every pixel
        /// the compose wrote, taken from the framebuffer so the region
        /// always means "changed since the previous compose". Empty for
        /// redundant frames. The content-rate meter uses it to restrict
        /// its grid comparison to the pixels that could have changed.
        damage: DamageRegion,
    },
}

/// The surface manager: owns the surfaces and the hardware framebuffer,
/// latches submissions and composes on V-Sync.
///
/// # Examples
///
/// ```
/// use ccdem_compositor::flinger::{ComposeOutcome, SurfaceFlinger};
/// use ccdem_pixelbuf::geometry::Resolution;
/// use ccdem_pixelbuf::pixel::Pixel;
/// use ccdem_simkit::time::SimTime;
///
/// let mut sf = SurfaceFlinger::new(Resolution::new(8, 8));
/// let app = sf.create_surface("demo app");
///
/// // The app draws and submits a frame…
/// sf.surface_mut(app)?.buffer_mut().fill(Pixel::WHITE);
/// sf.submit(app, SimTime::from_millis(5), true)?;
///
/// // …which reaches the framebuffer at the next V-Sync edge.
/// let outcome = sf.compose(SimTime::from_millis(16));
/// assert!(matches!(outcome, ComposeOutcome::Composed { content_changed: true, .. }));
/// assert_eq!(sf.framebuffer().pixel(0, 0), Pixel::WHITE);
/// # Ok::<(), ccdem_compositor::flinger::UnknownSurfaceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SurfaceFlinger {
    resolution: Resolution,
    surfaces: Vec<Surface>,
    framebuffer: FrameBuffer,
    pending: usize,
    pending_content: bool,
    stats: FrameStats,
    /// The surface-list layout stamp observed at the last full recompose;
    /// `None` until the first compose.
    composed_layout: Option<(usize, u64)>,
    naive_compose: bool,
    /// Recycled pixel storage new surfaces draw from; empty unless
    /// constructed via [`with_pool`](Self::with_pool).
    pool: PixelPool,
    /// Scratch for the per-compose z-order sort, reused across frames so
    /// the compose path stays allocation-free in steady state.
    order_scratch: Vec<(i32, usize)>,
}

impl SurfaceFlinger {
    /// Creates a compositor with an empty surface list and a black
    /// framebuffer.
    pub fn new(resolution: Resolution) -> SurfaceFlinger {
        SurfaceFlinger::with_pool(resolution, PixelPool::new())
    }

    /// [`new`](Self::new), but drawing the framebuffer and all future
    /// surface buffers from recycled `pool` storage. Recycled buffers are
    /// reset to the freshly-constructed state, so behaviour is identical
    /// to a pool-less compositor; only allocations are saved. Harvest the
    /// storage back with [`into_pool`](Self::into_pool) when the run is
    /// over.
    pub fn with_pool(resolution: Resolution, mut pool: PixelPool) -> SurfaceFlinger {
        SurfaceFlinger {
            resolution,
            surfaces: Vec::new(),
            framebuffer: pool.take_framebuffer(resolution),
            pending: 0,
            pending_content: false,
            stats: FrameStats::new(),
            composed_layout: None,
            naive_compose: false,
            pool,
            order_scratch: Vec::new(),
        }
    }

    /// Consumes the compositor, returning its pool with the framebuffer's
    /// and every surface's storage recycled into it.
    pub fn into_pool(self) -> PixelPool {
        let mut pool = self.pool;
        pool.give_framebuffer(self.framebuffer);
        for surface in self.surfaces {
            pool.give_framebuffer(surface.into_buffer());
        }
        pool
    }

    /// Forces every composition to recompose the full screen, disabling
    /// the damage-limited incremental path. The pixel output is identical
    /// either way; this exists so equivalence tests and benchmarks can run
    /// the pre-optimisation reference behaviour.
    pub fn set_naive_compose(&mut self, naive: bool) {
        self.naive_compose = naive;
    }

    /// The screen resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Creates a new full-screen surface (from pooled storage when
    /// available) and returns its id.
    pub fn create_surface(&mut self, label: impl Into<String>) -> SurfaceId {
        let id = SurfaceId::new(self.surfaces.len());
        let buffer = self.pool.take_framebuffer(self.resolution);
        self.surfaces.push(Surface::with_buffer(id, label, buffer));
        id
    }

    /// Shared access to a surface.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSurfaceError`] if `id` was not created here.
    pub fn surface(&self, id: SurfaceId) -> Result<&Surface, UnknownSurfaceError> {
        self.surfaces
            .get(id.index())
            .ok_or(UnknownSurfaceError { id })
    }

    /// Mutable access to a surface (for the owning app to draw).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSurfaceError`] if `id` was not created here.
    pub fn surface_mut(&mut self, id: SurfaceId) -> Result<&mut Surface, UnknownSurfaceError> {
        self.surfaces
            .get_mut(id.index())
            .ok_or(UnknownSurfaceError { id })
    }

    /// An application hands the compositor a finished frame at `now`.
    /// `content_changed` is the app's ground truth: did this frame's
    /// pixels differ from its previous frame? (Commercial apps submit
    /// plenty of unchanged frames — the paper's *redundant frames*.)
    ///
    /// The frame is latched; it reaches the framebuffer at the next
    /// [`compose`](Self::compose) call. Multiple submissions between
    /// edges coalesce into one composition.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSurfaceError`] if `id` was not created here.
    pub fn submit(
        &mut self,
        id: SurfaceId,
        now: SimTime,
        content_changed: bool,
    ) -> Result<(), UnknownSurfaceError> {
        let _ = self.surface(id)?;
        self.pending += 1;
        self.pending_content |= content_changed;
        self.stats.record_submission(now, content_changed);
        Ok(())
    }

    /// One V-Sync composition opportunity at `now`. If any submissions
    /// are pending, composes all visible surfaces into the framebuffer
    /// (one framebuffer write, regardless of how many submissions
    /// coalesced) and clears the latch.
    pub fn compose(&mut self, now: SimTime) -> ComposeOutcome {
        if self.pending == 0 {
            return ComposeOutcome::Idle;
        }
        let coalesced = self.pending;
        let content_changed = self.pending_content;
        self.pending = 0;
        self.pending_content = false;

        if content_changed {
            self.blit_surfaces();
        } else {
            // Redundant frame: the hardware still writes the framebuffer,
            // but the pixels are identical, so skip the copy and record
            // the write via the generation counter alone.
            self.framebuffer.touch();
        }
        self.stats.record_compose(now, content_changed);
        ComposeOutcome::Composed {
            content_changed,
            coalesced,
            damage: self.framebuffer.take_damage(),
        }
    }

    /// The hardware framebuffer (what the panel scans out and what the
    /// content-rate meter samples).
    pub fn framebuffer(&self) -> &FrameBuffer {
        &self.framebuffer
    }

    /// Frame accounting.
    pub fn stats(&self) -> &FrameStats {
        &self.stats
    }

    /// Whether a submission is waiting for the next V-Sync.
    pub fn has_pending(&self) -> bool {
        self.pending > 0
    }

    fn blit_surfaces(&mut self) {
        // Compose in ascending z-order; opaque surfaces copy, translucent
        // ones blend. Ties sort by surface slot, oldest underneath. The
        // sort scratch lives on the struct so steady-state composes do
        // not allocate (alloc-hot-path contract, DESIGN.md §10).
        self.order_scratch.clear();
        for (i, s) in self.surfaces.iter().enumerate() {
            if s.is_visible() {
                self.order_scratch.push((s.z_order(), i));
            }
        }
        self.order_scratch.sort_unstable();

        let stamp = (
            self.surfaces.len(),
            self.surfaces
                .iter()
                .map(Surface::layout_generation)
                .sum::<u64>(),
        );
        let full = self.naive_compose
            || self.composed_layout != Some(stamp)
            || !self.composition_is_pure(&self.order_scratch);
        self.composed_layout = Some(stamp);

        // Decide which screen region to recompose. While the layout is
        // stable and composition is a pure function of surface contents,
        // only the pixels the apps drew since the last compose can come
        // out different, so recomposing the z-stack restricted to that
        // accumulated damage reproduces the full recompose bit for bit.
        let region = if full {
            for s in &mut self.surfaces {
                s.buffer_mut().take_damage();
            }
            DamageRegion::of(self.resolution.bounds())
        } else {
            let mut region = DamageRegion::new();
            for s in &mut self.surfaces {
                let visible = s.is_visible();
                let bounds = s.bounds();
                let damage = s.buffer_mut().take_damage();
                if !visible {
                    continue;
                }
                for &r in damage.rects() {
                    if let Some(on_screen) = r.intersection(bounds) {
                        region.add(on_screen);
                    }
                }
            }
            region
        };

        if self.order_scratch.is_empty() || region.is_empty() {
            // No visible surfaces, or none of them drew anything new
            // on-screen: the hardware write still happens, with pixels
            // identical to the previous frame.
            self.framebuffer.touch();
            return;
        }
        for &(_, i) in &self.order_scratch {
            let Some(surface) = self.surfaces.get(i) else {
                continue;
            };
            let bounds = surface.bounds();
            for &rect in region.rects() {
                let Some(r) = rect.intersection(bounds) else {
                    continue;
                };
                if surface.is_opaque() {
                    if r == self.resolution.bounds() {
                        self.framebuffer.copy_from(surface.buffer());
                    } else {
                        self.framebuffer.copy_rect_from(surface.buffer(), r);
                    }
                } else {
                    self.framebuffer.blend_rect_from(surface.buffer(), r);
                }
            }
        }
    }

    /// Whether composing `order` (visible surfaces, ascending z) yields a
    /// framebuffer that depends only on surface contents, never on the
    /// previous framebuffer. True when every surface copies (opaque), or
    /// when the bottom layer is an opaque full-screen surface that every
    /// blend chain starts from. When false, translucent surfaces blend
    /// over leftover framebuffer state, so each compose feeds back on the
    /// last and only a full recompose is correct.
    fn composition_is_pure(&self, order: &[(i32, usize)]) -> bool {
        let Some(base) = order.first().and_then(|&(_, i)| self.surfaces.get(i)) else {
            return true;
        };
        (base.is_opaque() && base.bounds() == self.resolution.bounds())
            || order
                .iter()
                .all(|&(_, i)| self.surfaces.get(i).is_some_and(Surface::is_opaque))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdem_pixelbuf::pixel::Pixel;

    fn flinger() -> (SurfaceFlinger, SurfaceId) {
        let mut sf = SurfaceFlinger::new(Resolution::new(4, 4));
        let id = sf.create_surface("test");
        (sf, id)
    }

    #[test]
    fn idle_vsync_does_nothing() {
        let (mut sf, _) = flinger();
        let g = sf.framebuffer().generation();
        assert_eq!(sf.compose(SimTime::ZERO), ComposeOutcome::Idle);
        assert_eq!(sf.framebuffer().generation(), g);
        assert_eq!(sf.stats().composed().count(), 0);
    }

    #[test]
    fn submissions_coalesce_into_one_compose() {
        let (mut sf, id) = flinger();
        for ms in [1, 5, 9] {
            sf.submit(id, SimTime::from_millis(ms), false).unwrap();
        }
        match sf.compose(SimTime::from_millis(16)) {
            ComposeOutcome::Composed {
                content_changed,
                coalesced,
                damage,
            } => {
                assert!(!content_changed);
                assert_eq!(coalesced, 3);
                assert!(damage.is_empty(), "redundant frame carries no damage");
            }
            other => panic!("expected compose, got {other:?}"),
        }
        assert!(!sf.has_pending());
        assert_eq!(sf.stats().composed().count(), 1);
        assert_eq!(sf.stats().submissions().count(), 3);
    }

    #[test]
    fn content_flag_ors_across_coalesced_frames() {
        let (mut sf, id) = flinger();
        sf.submit(id, SimTime::from_millis(1), false).unwrap();
        sf.submit(id, SimTime::from_millis(2), true).unwrap();
        match sf.compose(SimTime::from_millis(16)) {
            ComposeOutcome::Composed {
                content_changed, ..
            } => assert!(content_changed),
            other => panic!("expected compose, got {other:?}"),
        }
    }

    #[test]
    fn redundant_frame_bumps_generation_without_pixel_change() {
        let (mut sf, id) = flinger();
        sf.surface_mut(id).unwrap().buffer_mut().fill(Pixel::WHITE);
        sf.submit(id, SimTime::from_millis(1), true).unwrap();
        sf.compose(SimTime::from_millis(16));
        let g1 = sf.framebuffer().generation();
        let px1 = sf.framebuffer().pixel(0, 0);

        sf.submit(id, SimTime::from_millis(20), false).unwrap();
        sf.compose(SimTime::from_millis(33));
        assert!(sf.framebuffer().generation() > g1);
        assert_eq!(sf.framebuffer().pixel(0, 0), px1);
    }

    #[test]
    fn hidden_surface_not_composed() {
        let (mut sf, id) = flinger();
        sf.surface_mut(id).unwrap().buffer_mut().fill(Pixel::WHITE);
        sf.surface_mut(id).unwrap().set_visible(false);
        sf.submit(id, SimTime::from_millis(1), true).unwrap();
        sf.compose(SimTime::from_millis(16));
        assert_eq!(sf.framebuffer().pixel(0, 0), Pixel::BLACK);
    }

    #[test]
    fn translucent_overlay_blends() {
        let mut sf = SurfaceFlinger::new(Resolution::new(2, 2));
        let base = sf.create_surface("base");
        let overlay = sf.create_surface("overlay");
        sf.surface_mut(base).unwrap().buffer_mut().fill(Pixel::BLACK);
        {
            let s = sf.surface_mut(overlay).unwrap();
            s.set_z_order(1);
            s.set_opaque(false);
            s.buffer_mut().fill(Pixel::rgba(255, 255, 255, 128));
        }
        sf.submit(base, SimTime::from_millis(1), true).unwrap();
        sf.compose(SimTime::from_millis(16));
        let p = sf.framebuffer().pixel(0, 0);
        assert!(p.red() > 100 && p.red() < 160, "expected a blend, got {p}");
    }

    #[test]
    fn bounded_surface_composes_only_its_region() {
        use ccdem_pixelbuf::geometry::Rect;
        let mut sf = SurfaceFlinger::new(Resolution::new(8, 8));
        let app = sf.create_surface("app");
        let bar = sf.create_surface("status bar");
        sf.surface_mut(app).unwrap().buffer_mut().fill(Pixel::grey(50));
        {
            let s = sf.surface_mut(bar).unwrap();
            s.set_z_order(1);
            s.set_bounds(Rect::new(0, 0, 8, 2));
            s.buffer_mut().fill(Pixel::WHITE);
        }
        sf.submit(app, SimTime::from_millis(1), true).unwrap();
        sf.compose(SimTime::from_millis(16));
        // Bar covers the top two rows only.
        assert_eq!(sf.framebuffer().pixel(4, 1), Pixel::WHITE);
        assert_eq!(sf.framebuffer().pixel(4, 2), Pixel::grey(50));
    }

    #[test]
    fn composed_damage_covers_drawn_region() {
        use ccdem_pixelbuf::geometry::Rect;
        let (mut sf, id) = flinger();
        // Prime: first compose is always a full recompose.
        sf.surface_mut(id).unwrap().buffer_mut().fill(Pixel::grey(10));
        sf.submit(id, SimTime::from_millis(1), true).unwrap();
        match sf.compose(SimTime::from_millis(16)) {
            ComposeOutcome::Composed { damage, .. } => {
                assert_eq!(damage.bounding(), Rect::new(0, 0, 4, 4));
            }
            other => panic!("expected compose, got {other:?}"),
        }
        // Steady state: a small draw produces small damage.
        let drawn = Rect::new(1, 1, 2, 2);
        sf.surface_mut(id)
            .unwrap()
            .buffer_mut()
            .fill_rect(drawn, Pixel::WHITE);
        sf.submit(id, SimTime::from_millis(20), true).unwrap();
        match sf.compose(SimTime::from_millis(33)) {
            ComposeOutcome::Composed { damage, .. } => {
                assert_eq!(damage.bounding(), drawn);
            }
            other => panic!("expected compose, got {other:?}"),
        }
        assert_eq!(sf.framebuffer().pixel(2, 2), Pixel::WHITE);
        assert_eq!(sf.framebuffer().pixel(0, 0), Pixel::grey(10));
    }

    #[test]
    fn incremental_compose_matches_full_recompose() {
        use ccdem_pixelbuf::geometry::Rect;
        let res = Resolution::new(16, 16);
        let mut fast = SurfaceFlinger::new(res);
        let mut naive = SurfaceFlinger::new(res);
        naive.set_naive_compose(true);
        for sf in [&mut fast, &mut naive] {
            let app = sf.create_surface("app");
            let bar = sf.create_surface("bar");
            sf.surface_mut(app).unwrap().buffer_mut().fill(Pixel::grey(30));
            let s = sf.surface_mut(bar).unwrap();
            s.set_z_order(1);
            s.set_bounds(Rect::new(0, 0, 16, 2));
            s.set_opaque(false);
            s.buffer_mut().fill(Pixel::rgba(255, 255, 255, 96));
        }

        let steps: [(usize, Rect, Pixel); 4] = [
            (0, Rect::new(2, 4, 5, 5), Pixel::WHITE),
            (0, Rect::new(0, 0, 16, 1), Pixel::grey(200)), // under the bar
            (1, Rect::new(3, 0, 4, 2), Pixel::rgba(0, 255, 0, 128)),
            (0, Rect::new(10, 10, 3, 3), Pixel::grey(99)),
        ];
        for (n, (surface, rect, colour)) in steps.iter().enumerate() {
            for sf in [&mut fast, &mut naive] {
                let id = SurfaceId::new(*surface);
                sf.surface_mut(id).unwrap().buffer_mut().fill_rect(*rect, *colour);
                sf.submit(id, SimTime::from_millis(n as u64 * 16), true).unwrap();
                sf.compose(SimTime::from_millis(n as u64 * 16 + 8));
            }
            assert_eq!(
                fast.framebuffer().as_pixels(),
                naive.framebuffer().as_pixels(),
                "framebuffers diverged at step {n}"
            );
        }
    }

    #[test]
    fn layout_change_forces_full_recompose() {
        use ccdem_pixelbuf::geometry::Rect;
        let res = Resolution::new(8, 8);
        let mut sf = SurfaceFlinger::new(res);
        let app = sf.create_surface("app");
        let pip = sf.create_surface("pip");
        sf.surface_mut(app).unwrap().buffer_mut().fill(Pixel::grey(20));
        {
            let s = sf.surface_mut(pip).unwrap();
            s.set_z_order(1);
            s.set_bounds(Rect::new(0, 0, 4, 4));
            s.buffer_mut().fill(Pixel::WHITE);
        }
        sf.submit(app, SimTime::from_millis(1), true).unwrap();
        sf.compose(SimTime::from_millis(8));
        assert_eq!(sf.framebuffer().pixel(1, 1), Pixel::WHITE);

        // Hiding the overlay must repaint its old pixels from the app
        // surface even though nobody drew anything new.
        sf.surface_mut(pip).unwrap().set_visible(false);
        sf.submit(app, SimTime::from_millis(20), true).unwrap();
        match sf.compose(SimTime::from_millis(24)) {
            ComposeOutcome::Composed { damage, .. } => {
                assert_eq!(damage.bounding(), res.bounds());
            }
            other => panic!("expected compose, got {other:?}"),
        }
        assert_eq!(sf.framebuffer().pixel(1, 1), Pixel::grey(20));
    }

    #[test]
    fn unknown_surface_errors() {
        let (mut sf, _) = flinger();
        let bogus = SurfaceId::new(99);
        assert!(sf.submit(bogus, SimTime::ZERO, true).is_err());
        assert!(sf.surface(bogus).is_err());
        let err = sf.surface_mut(bogus).unwrap_err();
        assert_eq!(err.to_string(), "unknown surface#99");
    }

    #[test]
    fn compose_propagates_tile_signatures() {
        use ccdem_pixelbuf::geometry::Rect;
        // The compositor's blits maintain the framebuffer's per-tile
        // content signatures for free: opaque copies inherit the source
        // surface's provable solidity, translucent blends degrade the
        // blended tiles to unknown.
        let res = Resolution::new(128, 128); // 2×2 tiles
        let mut sf = SurfaceFlinger::new(res);
        let base = sf.create_surface("base");
        sf.surface_mut(base).unwrap().buffer_mut().fill(Pixel::grey(30));
        sf.submit(base, SimTime::ZERO, true).unwrap();
        sf.compose(SimTime::ZERO);
        let tiles = sf.framebuffer().tiles();
        for ty in 0..2 {
            for tx in 0..2 {
                assert_eq!(
                    tiles.tile(tx, ty).solid,
                    Some(Pixel::grey(30)),
                    "tile ({tx},{ty}) after opaque full-screen compose"
                );
            }
        }

        // A translucent overlay over the top-left tile degrades exactly
        // the blended tile; the copied tiles stay provably solid.
        let overlay = sf.create_surface("overlay");
        {
            let s = sf.surface_mut(overlay).unwrap();
            s.set_bounds(Rect::new(0, 0, 64, 64));
            s.set_opaque(false);
            s.set_z_order(1);
            s.buffer_mut().fill(Pixel::rgba(255, 255, 255, 128));
        }
        sf.submit(overlay, SimTime::from_millis(16), true).unwrap();
        sf.compose(SimTime::from_millis(16));
        let tiles = sf.framebuffer().tiles();
        assert_eq!(tiles.tile(0, 0).solid, None, "blended tile is unknown");
        for (tx, ty) in [(1, 0), (0, 1), (1, 1)] {
            assert_eq!(tiles.tile(tx, ty).solid, Some(Pixel::grey(30)));
        }

        // Incremental compose: a draw confined to the bottom-right tile
        // recomposes only that region, and the tile-covering copy
        // inherits the surface tile's new solid colour.
        sf.surface_mut(base)
            .unwrap()
            .buffer_mut()
            .fill_rect(Rect::new(64, 64, 64, 64), Pixel::grey(55));
        sf.submit(base, SimTime::from_millis(33), true).unwrap();
        sf.compose(SimTime::from_millis(33));
        let tiles = sf.framebuffer().tiles();
        assert_eq!(tiles.tile(1, 1).solid, Some(Pixel::grey(55)));
        assert_eq!(tiles.tile(1, 0).solid, Some(Pixel::grey(30)));
        assert_eq!(tiles.tile(0, 0).solid, None);
    }

    #[test]
    fn vsync_caps_frame_rate_at_refresh_rate() {
        // 60 submissions in one second, composed on 20 Hz edges -> 20
        // composed frames. This is the V-Sync feedback the paper's
        // section table works around.
        let (mut sf, id) = flinger();
        let mut edges = 0;
        for ms in 0..1000u64 {
            if ms % 17 == 0 {
                sf.submit(id, SimTime::from_millis(ms), true).unwrap();
            }
            if ms % 50 == 49 {
                sf.compose(SimTime::from_millis(ms));
                edges += 1;
            }
        }
        assert_eq!(edges, 20);
        assert_eq!(sf.stats().composed().count(), 20);
        assert!(sf.stats().submissions().count() > 50);
    }
}
