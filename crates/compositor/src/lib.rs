//! # ccdem-compositor
//!
//! A SurfaceFlinger-like surface manager for the `ccdem` simulator:
//!
//! * [`surface`] — per-application rendering targets with z-order.
//! * [`flinger`] — submission latching and V-Sync-edge composition into
//!   the hardware framebuffer. The latch is V-Sync throttling: at most one
//!   framebuffer update per refresh period, which caps the frame rate at
//!   the refresh rate (paper §2.1).
//! * [`stats`] — the four frame-event streams (submissions, content
//!   submissions, composed frames, content-carrying composed frames) from
//!   which frame rate, actual content rate, displayed content rate and
//!   dropped frames are derived.
//!
//! # Examples
//!
//! ```
//! use ccdem_compositor::flinger::SurfaceFlinger;
//! use ccdem_pixelbuf::geometry::Resolution;
//! use ccdem_simkit::time::SimTime;
//!
//! let mut sf = SurfaceFlinger::new(Resolution::new(8, 8));
//! let app = sf.create_surface("app");
//! // A redundant frame: submitted, composed, but no pixel changed.
//! sf.submit(app, SimTime::from_millis(1), false)?;
//! sf.compose(SimTime::from_millis(16));
//! assert_eq!(sf.stats().composed().count(), 1);
//! assert_eq!(sf.stats().content_composed().count(), 0);
//! # Ok::<(), ccdem_compositor::flinger::UnknownSurfaceError>(())
//! ```

pub mod flinger;
pub mod stats;
pub mod surface;

pub use flinger::{ComposeOutcome, SurfaceFlinger, UnknownSurfaceError};
pub use stats::FrameStats;
pub use surface::{Surface, SurfaceId};
