//! Frame accounting.
//!
//! Four event streams capture everything the evaluation needs:
//!
//! * *submissions* — every frame an application handed to the compositor;
//! * *content submissions* — submissions whose pixels actually changed
//!   (the app's intended content stream; its per-second rate is the
//!   **actual content rate** of Fig. 10);
//! * *composed frames* — framebuffer updates performed on V-Sync edges
//!   (their per-second rate is the paper's **frame rate**);
//! * *content composed* — composed frames that carried changed content
//!   (their per-second rate is the **displayed content rate**; actual
//!   minus displayed is the dropped-frame rate of Fig. 10).

use ccdem_simkit::time::SimTime;
use ccdem_simkit::trace::EventCounter;

/// The compositor's frame-event streams.
#[derive(Debug, Clone, Default)]
pub struct FrameStats {
    submissions: EventCounter,
    content_submissions: EventCounter,
    composed: EventCounter,
    content_composed: EventCounter,
}

impl FrameStats {
    /// Creates empty counters.
    pub fn new() -> FrameStats {
        FrameStats::default()
    }

    /// Records an application frame submission.
    pub fn record_submission(&mut self, now: SimTime, content_changed: bool) {
        self.submissions.record(now);
        if content_changed {
            self.content_submissions.record(now);
        }
    }

    /// Records a composition (framebuffer update).
    pub fn record_compose(&mut self, now: SimTime, content_changed: bool) {
        self.composed.record(now);
        if content_changed {
            self.content_composed.record(now);
        }
    }

    /// All application submissions.
    pub fn submissions(&self) -> &EventCounter {
        &self.submissions
    }

    /// Submissions carrying changed content.
    pub fn content_submissions(&self) -> &EventCounter {
        &self.content_submissions
    }

    /// Framebuffer updates (the paper's frame rate).
    pub fn composed(&self) -> &EventCounter {
        &self.composed
    }

    /// Framebuffer updates that displayed new content.
    pub fn content_composed(&self) -> &EventCounter {
        &self.content_composed
    }

    /// Frames the application *intended* but that never reached the glass:
    /// content submissions minus content-carrying compositions, within
    /// `[start, end)`, clamped at zero.
    pub fn dropped_content_frames_in(&self, start: SimTime, end: SimTime) -> usize {
        let intended = self.content_submissions.count_in(start, end);
        let displayed = self.content_composed.count_in(start, end);
        intended.saturating_sub(displayed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_partition_correctly() {
        let mut s = FrameStats::new();
        s.record_submission(SimTime::from_millis(1), true);
        s.record_submission(SimTime::from_millis(2), false);
        s.record_submission(SimTime::from_millis(3), true);
        s.record_compose(SimTime::from_millis(4), true);
        assert_eq!(s.submissions().count(), 3);
        assert_eq!(s.content_submissions().count(), 2);
        assert_eq!(s.composed().count(), 1);
        assert_eq!(s.content_composed().count(), 1);
    }

    #[test]
    fn dropped_frames_clamped_at_zero() {
        let mut s = FrameStats::new();
        // Displayed more content frames than submissions in this window
        // can't happen in practice, but the metric must not underflow.
        s.record_compose(SimTime::from_millis(1), true);
        assert_eq!(
            s.dropped_content_frames_in(SimTime::ZERO, SimTime::from_secs(1)),
            0
        );
    }

    #[test]
    fn dropped_frames_counts_coalesced_content() {
        let mut s = FrameStats::new();
        // Three content submissions, only one composed frame carried them.
        for ms in [1, 2, 3] {
            s.record_submission(SimTime::from_millis(ms), true);
        }
        s.record_compose(SimTime::from_millis(16), true);
        assert_eq!(
            s.dropped_content_frames_in(SimTime::ZERO, SimTime::from_secs(1)),
            2
        );
    }
}
