//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The real criterion cannot be fetched in offline build environments, so
//! this crate implements just enough of its API for the ccdem benches to
//! compile and produce useful numbers: [`Criterion`], benchmark groups,
//! [`Bencher::iter`], throughput annotation and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples of an iteration count auto-scaled so one sample
//! takes roughly a millisecond. The mean and min per-iteration times are
//! printed to stdout — no statistics files, plots or regression analysis.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.criterion.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.criterion.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier built from a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Units processed per iteration, for reporting element/byte rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `body` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_sample<F: FnMut(&mut Bencher)>(iters: u64, f: &mut F) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_one<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the iteration count until one sample takes ~1 ms,
    // so fast bodies are not dominated by timer resolution.
    let mut iters: u64 = 1;
    loop {
        let elapsed = time_sample(iters, f);
        if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..sample_size {
        let elapsed = time_sample(iters, f);
        total += elapsed;
        min = min.min(elapsed);
    }
    let samples = sample_size as u32;
    let mean = total / samples / iters as u32;
    let best = min / iters as u32;
    match throughput {
        Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("{name:<48} mean {mean:>12?}  min {best:>12?}  {rate:>12.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
            let rate = n as f64 / mean.as_secs_f64() / (1 << 20) as f64;
            println!("{name:<48} mean {mean:>12?}  min {best:>12?}  {rate:>9.1} MiB/s");
        }
        _ => println!("{name:<48} mean {mean:>12?}  min {best:>12?}"),
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut ran = 0u64;
        Criterion::default()
            .sample_size(2)
            .bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
