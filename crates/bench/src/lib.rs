//! # ccdem-bench
//!
//! Criterion benchmark harness for the `ccdem` reproduction. The crate
//! has no library code of its own; everything lives in `benches/`:
//!
//! * `fig6_metering_cost` — Fig. 6's run-time axis: grid comparison cost
//!   at the paper's five pixel budgets.
//! * `micro_core` — per-frame/per-window hot paths (meter observation,
//!   section lookup, compose, double-buffer capture).
//! * `paper_experiments` — one bench per paper figure/table, printing
//!   the regenerated numbers and timing the regeneration.
//! * `ablations` — design-knob sweeps (control window, grid budget,
//!   boost hold, mapping rule) with outcome tables.
//!
//! Run everything with `cargo bench -p ccdem-bench`.
