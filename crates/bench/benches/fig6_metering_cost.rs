//! Figure 6 (right axis): wall-clock cost of one content-rate metering
//! step vs the number of compared pixels.
//!
//! The paper's claim: at 9K–36K pixels the comparison is effectively
//! free, while comparing all 921K pixels blows the 16.67 ms frame budget
//! (on 2012 phone silicon). On a modern host the absolute numbers are
//! far smaller, but the growth with pixel count — and the full scan
//! costing orders of magnitude more than the 9K grid — reproduces.
//!
//! Run with `cargo bench -p ccdem-bench --bench fig6_metering_cost`.

use ccdem_pixelbuf::buffer::FrameBuffer;
use ccdem_pixelbuf::damage::DamageRegion;
use ccdem_pixelbuf::geometry::{Rect, Resolution};
use ccdem_pixelbuf::grid::GridSampler;
use ccdem_pixelbuf::pixel::Pixel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_compare(c: &mut Criterion) {
    let resolution = Resolution::GALAXY_S3;
    let mut group = c.benchmark_group("fig6/compare");
    for budget in [2_304usize, 4_080, 9_216, 36_864, 921_600] {
        let sampler = GridSampler::for_pixel_budget(resolution, budget);
        let fb = FrameBuffer::new(resolution);
        let snapshot = sampler.sample(&fb);
        group.throughput(Throughput::Elements(sampler.sample_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(sampler.sample_count()),
            &budget,
            |b, _| {
                b.iter(|| sampler.differs(std::hint::black_box(&fb), &snapshot));
            },
        );
    }
    group.finish();
}

fn bench_capture(c: &mut Criterion) {
    // The snapshot (double-buffer) side of the meter step.
    let resolution = Resolution::GALAXY_S3;
    let mut group = c.benchmark_group("fig6/capture");
    for budget in [2_304usize, 9_216, 36_864, 921_600] {
        let sampler = GridSampler::for_pixel_budget(resolution, budget);
        let mut fb = FrameBuffer::new(resolution);
        fb.fill(Pixel::grey(80));
        let mut scratch = sampler.sample(&fb);
        group.throughput(Throughput::Elements(sampler.sample_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(sampler.sample_count()),
            &budget,
            |b, _| {
                b.iter(|| sampler.sample_into(std::hint::black_box(&fb), &mut scratch));
            },
        );
    }
    group.finish();
}

fn bench_fused(c: &mut Criterion) {
    // The PR 3 fast path: one fused gather classifies and refreshes the
    // snapshot together, where the legacy meter paid bench_compare plus
    // bench_capture per frame.
    let resolution = Resolution::GALAXY_S3;
    let mut group = c.benchmark_group("fig6/fused_compare_and_capture");
    for budget in [2_304usize, 4_080, 9_216, 36_864, 921_600] {
        let sampler = GridSampler::for_pixel_budget(resolution, budget);
        let fb = FrameBuffer::new(resolution);
        let mut snapshot = sampler.sample(&fb);
        group.throughput(Throughput::Elements(sampler.sample_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(sampler.sample_count()),
            &budget,
            |b, _| {
                b.iter(|| sampler.compare_and_capture(std::hint::black_box(&fb), &mut snapshot));
            },
        );
    }
    group.finish();
}

fn bench_damage_restricted(c: &mut Criterion) {
    // A status-bar-sized change: the gather touches only the grid rows
    // and columns intersecting the damage, found by binary search.
    let resolution = Resolution::GALAXY_S3;
    let sampler = GridSampler::for_pixel_budget(resolution, 9_216);
    let fb = FrameBuffer::new(resolution);
    let mut snapshot = sampler.sample(&fb);
    let damage = DamageRegion::of(Rect::new(0, 0, resolution.width, 32));
    c.bench_function("fig6/damaged_gather_9k_status_bar", |b| {
        b.iter(|| {
            sampler.compare_and_capture_damaged(
                std::hint::black_box(&fb),
                &damage,
                &mut snapshot,
            )
        });
    });
}

fn bench_worst_case_redundant(c: &mut Criterion) {
    // A redundant frame pays the full scan (no early exit); this was the
    // meter's steady-state cost on idle apps before the O(1)
    // generation check (see core/meter_observe/redundant_9k_naive in
    // micro_core for the end-to-end contrast).
    let resolution = Resolution::GALAXY_S3;
    let sampler = GridSampler::for_pixel_budget(resolution, 9_216);
    let fb = FrameBuffer::new(resolution);
    let snapshot = sampler.sample(&fb);
    c.bench_function("fig6/redundant_frame_9k_full_scan", |b| {
        b.iter(|| {
            let differs = sampler.differs(std::hint::black_box(&fb), &snapshot);
            assert!(!differs);
            differs
        });
    });
}

criterion_group!(
    benches,
    bench_compare,
    bench_capture,
    bench_fused,
    bench_damage_restricted,
    bench_worst_case_redundant
);
criterion_main!(benches);
