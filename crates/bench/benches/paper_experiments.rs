//! One bench target per paper figure/table: regenerates each experiment
//! (at a reduced, fixed configuration) and times the regeneration.
//!
//! The numbers each experiment *produces* are printed once at the start
//! of its bench (Criterion benches run the closure many times; the
//! printout happens on a separate warm-up invocation), so `cargo bench
//! --bench paper_experiments` both regenerates the paper's evaluation
//! and reports how long each piece takes to simulate.

use ccdem_experiments::{fig2, fig3, fig6, fig7, fig8, sweep};
use ccdem_simkit::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};

fn quick_duration() -> SimDuration {
    SimDuration::from_secs(15)
}

fn bench_fig2(c: &mut Criterion) {
    let cfg = fig2::Fig2Config {
        duration: quick_duration(),
        quarter_resolution: true,
        ..Default::default()
    };
    let fig = fig2::run(&cfg);
    println!(
        "\n[fig2] Facebook mean frame rate {:.1} fps, Jelly Splash {:.1} fps",
        fig.facebook.frame_rate.iter().sum::<f64>() / fig.facebook.frame_rate.len() as f64,
        fig.jelly_splash.frame_rate.iter().sum::<f64>()
            / fig.jelly_splash.frame_rate.len() as f64,
    );
    c.bench_function("paper/fig2_traces", |b| b.iter(|| fig2::run(&cfg)));
}

fn bench_fig3(c: &mut Criterion) {
    let cfg = fig3::Fig3Config {
        duration: SimDuration::from_secs(8),
        quarter_resolution: true,
        ..Default::default()
    };
    let fig = fig3::run(&cfg);
    println!(
        "\n[fig3] games >20 redundant fps: {:.0}%, general: {:.0}%",
        fig.fraction_redundant_above(ccdem_workloads::app::AppClass::Game, 20.0) * 100.0,
        fig.fraction_redundant_above(ccdem_workloads::app::AppClass::General, 20.0) * 100.0,
    );
    c.bench_function("paper/fig3_redundancy_sweep", |b| b.iter(|| fig3::run(&cfg)));
}

fn bench_fig6(c: &mut Criterion) {
    let cfg = fig6::Fig6Config {
        frames: 120,
        timing_iterations: 5,
        ..Default::default()
    };
    let fig = fig6::run(&cfg);
    for p in &fig.points {
        println!(
            "[fig6] {:>7} px: error {:>5.1}%, {:>9.1} µs",
            p.pixels,
            p.error_pct,
            p.duration.as_secs_f64() * 1e6
        );
    }
    c.bench_function("paper/fig6_accuracy_and_cost", |b| b.iter(|| fig6::run(&cfg)));
}

fn bench_fig7(c: &mut Criterion) {
    let cfg = fig7::Fig7Config {
        duration: quick_duration(),
        quarter_resolution: true,
        ..Default::default()
    };
    let fig = fig7::run(&cfg);
    println!(
        "\n[fig7] dropped frames — section: {:.0}, +boost: {:.0}",
        fig.facebook_section.total_dropped + fig.jelly_section.total_dropped,
        fig.facebook_boost.total_dropped + fig.jelly_boost.total_dropped,
    );
    c.bench_function("paper/fig7_control_traces", |b| b.iter(|| fig7::run(&cfg)));
}

fn bench_fig8(c: &mut Criterion) {
    let cfg = fig8::Fig8Config {
        duration: quick_duration(),
        quarter_resolution: true,
        ..Default::default()
    };
    let fig = fig8::run(&cfg);
    println!(
        "\n[fig8] saved — Facebook {:.0} mW, Jelly Splash {:.0} mW (section-only)",
        fig.facebook[0].saved.mean, fig.jelly_splash[0].saved.mean,
    );
    c.bench_function("paper/fig8_power_traces", |b| b.iter(|| fig8::run(&cfg)));
}

fn bench_sweep_figs(c: &mut Criterion) {
    // Figs. 9–11 and Table 1 all derive from the 30-app sweep; bench the
    // sweep once and print each view.
    let cfg = sweep::SweepConfig {
        duration: SimDuration::from_secs(6),
        quarter_resolution: true,
        ..Default::default()
    };
    let s = sweep::run(&cfg);
    println!("\n[fig9/fig10/fig11/table1]\n{}", s.table1_text());
    c.bench_function("paper/fig9_10_11_table1_sweep", |b| {
        b.iter(|| sweep::run(&cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2, bench_fig3, bench_fig6, bench_fig7, bench_fig8, bench_sweep_figs
}
criterion_main!(benches);
