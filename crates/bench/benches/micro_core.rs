//! Micro-benchmarks of the governor's per-frame and per-window hot paths.
//!
//! These bound the runtime overhead the scheme would add to a real
//! compositor: one meter observation per framebuffer write, one table
//! lookup per control window, one compose per V-Sync.
//!
//! Run with `cargo bench -p ccdem-bench --bench micro_core`.

use ccdem_compositor::flinger::SurfaceFlinger;
use ccdem_core::content_rate::ContentRate;
use ccdem_core::governor::{Governor, GovernorConfig, Policy};
use ccdem_core::meter::ContentRateMeter;
use ccdem_core::section::{RateMapper, SectionTable};
use ccdem_panel::refresh::RefreshRateSet;
use ccdem_pixelbuf::buffer::FrameBuffer;
use ccdem_pixelbuf::double_buffer::DoubleBuffer;
use ccdem_pixelbuf::geometry::Resolution;
use ccdem_pixelbuf::grid::GridSampler;
use ccdem_pixelbuf::pixel::Pixel;
use ccdem_simkit::time::{SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_meter_observe(c: &mut Criterion) {
    let res = Resolution::GALAXY_S3;
    let mut group = c.benchmark_group("core/meter_observe");

    // Redundant frame, fast path: the content generation is unchanged,
    // so classification is O(1) with zero pixel reads — the common
    // steady-state case on idle apps.
    group.bench_function("redundant_9k", |b| {
        let mut meter = ContentRateMeter::new(GridSampler::for_pixel_budget(res, 9_216));
        let fb = FrameBuffer::new(res);
        let mut t = 0u64;
        b.iter(|| {
            t += 16_667;
            meter.observe(&fb, SimTime::from_micros(t))
        });
    });

    // The same redundant frame through the pre-PR pipeline: a full
    // compare pass plus a full capture pass (2 × 9 216 reads).
    group.bench_function("redundant_9k_naive", |b| {
        let mut meter = ContentRateMeter::new(GridSampler::for_pixel_budget(res, 9_216));
        meter.set_naive(true);
        let fb = FrameBuffer::new(res);
        let mut t = 0u64;
        b.iter(|| {
            t += 16_667;
            meter.observe(&fb, SimTime::from_micros(t))
        });
    });

    // A small damaged region: the gather is restricted to the grid
    // points the damage intersects.
    group.bench_function("small_damage_9k", |b| {
        use ccdem_pixelbuf::geometry::Rect;
        let mut meter = ContentRateMeter::new(GridSampler::for_pixel_budget(res, 9_216));
        let mut fb = FrameBuffer::new(res);
        let patch = Rect::new(res.width / 2, res.height / 2, 90, 40);
        let mut t = 0u64;
        let mut grey = 0u8;
        b.iter(|| {
            t += 16_667;
            grey = grey.wrapping_add(1);
            fb.fill_rect(patch, Pixel::grey(grey));
            let damage = fb.take_damage();
            meter.observe_damaged(&fb, &damage, SimTime::from_micros(t))
        });
    });

    // Meaningful frame: early exit on the first differing pixel plus the
    // snapshot refresh.
    group.bench_function("meaningful_9k", |b| {
        let mut meter = ContentRateMeter::new(GridSampler::for_pixel_budget(res, 9_216));
        let mut fb = FrameBuffer::new(res);
        let mut t = 0u64;
        let mut grey = 0u8;
        b.iter(|| {
            t += 16_667;
            grey = grey.wrapping_add(1);
            fb.fill(Pixel::grey(grey.max(1)));
            meter.observe(&fb, SimTime::from_micros(t))
        });
    });

    // Full-screen fill at the full 921 600-px grid: every tile is
    // provably solid after the fill, so the tile-gated gather compares
    // snapshot slots against constants and refreshes them without
    // reading the framebuffer at all (DESIGN.md §12).
    group.bench_function("full_change_full_grid", |b| {
        let mut meter = ContentRateMeter::new(GridSampler::full(res));
        let mut fb = FrameBuffer::new(res);
        let mut t = 0u64;
        let mut grey = 0u8;
        b.iter(|| {
            t += 16_667;
            grey = grey.wrapping_add(1);
            fb.fill(Pixel::grey(grey.max(1)));
            meter.observe(&fb, SimTime::from_micros(t))
        });
    });
    group.finish();
}

fn bench_section_lookup(c: &mut Criterion) {
    let table = SectionTable::new(RefreshRateSet::galaxy_s3());
    let rates: Vec<ContentRate> = (0..64).map(|i| ContentRate::from_fps(i as f64)).collect();
    c.bench_function("core/section_rate_for_64_lookups", |b| {
        b.iter(|| {
            rates
                .iter()
                .map(|&cr| table.rate_for(cr).hz())
                .sum::<u32>()
        });
    });
}

fn bench_governor_window(c: &mut Criterion) {
    // A full control window at 60 fps: 30 observations + one decision.
    let res = Resolution::QUARTER;
    c.bench_function("core/governor_half_second_window", |b| {
        let mut gov = Governor::new(
            RefreshRateSet::galaxy_s3(),
            res,
            GovernorConfig::new(Policy::SectionWithBoost).with_grid_budget(576),
        );
        let mut fb = FrameBuffer::new(res);
        let mut t = 0u64;
        let mut grey = 0u8;
        b.iter(|| {
            for i in 0..30u64 {
                if i % 2 == 0 {
                    grey = grey.wrapping_add(1);
                    fb.fill(Pixel::grey(grey.max(1)));
                } else {
                    fb.touch();
                }
                gov.on_framebuffer_update(&fb, SimTime::from_micros(t + i * 16_667));
            }
            t += 500_000;
            gov.decide(SimTime::from_micros(t))
        });
    });
}

fn bench_double_buffer_capture(c: &mut Criterion) {
    let res = Resolution::GALAXY_S3;
    c.bench_function("pixelbuf/double_buffer_capture_full_res", |b| {
        let mut db = DoubleBuffer::new(res);
        let fb = FrameBuffer::new(res);
        b.iter(|| db.capture(std::hint::black_box(&fb)));
    });
}

fn bench_compose(c: &mut Criterion) {
    let res = Resolution::GALAXY_S3;
    let mut group = c.benchmark_group("compositor/compose");
    group.bench_function("content_frame_full_res", |b| {
        let mut sf = SurfaceFlinger::new(res);
        let id = sf.create_surface("bench");
        sf.surface_mut(id).unwrap().buffer_mut().fill(Pixel::grey(1));
        let mut t = 0u64;
        b.iter(|| {
            t += 16_667;
            sf.submit(id, SimTime::from_micros(t), true).unwrap();
            sf.compose(SimTime::from_micros(t))
        });
    });
    group.bench_function("redundant_frame_full_res", |b| {
        let mut sf = SurfaceFlinger::new(res);
        let id = sf.create_surface("bench");
        let mut t = 0u64;
        b.iter(|| {
            t += 16_667;
            sf.submit(id, SimTime::from_micros(t), false).unwrap();
            sf.compose(SimTime::from_micros(t))
        });
    });
    group.finish();
}

fn bench_frame_budget_check(c: &mut Criterion) {
    // The paper's feasibility bar: one meter step must fit far inside a
    // 60 Hz frame (16.67 ms). Criterion's report makes the margin visible.
    let res = Resolution::GALAXY_S3;
    let sampler = GridSampler::for_pixel_budget(res, 36_864);
    let fb = FrameBuffer::new(res);
    let mut scratch = sampler.sample(&fb);
    c.bench_function("core/full_meter_step_36k", |b| {
        b.iter(|| {
            let d = sampler.compare_and_capture(&fb, &mut scratch).differs;
            let _ = SimDuration::from_hz(60); // the budget being beaten
            d
        });
    });
}

fn bench_workload_tick(c: &mut Criterion) {
    use ccdem_simkit::rng::SimRng;
    use ccdem_workloads::app::{AppModel, InputContext};
    use ccdem_workloads::catalog;
    c.bench_function("workloads/jelly_splash_tick", |b| {
        let mut app = catalog::jelly_splash().instantiate();
        let mut rng = SimRng::seed_from_u64(1);
        let ctx = InputContext::default();
        let mut t = 0u64;
        b.iter(|| {
            t += 16_667;
            app.tick(SimTime::from_micros(t), &ctx, &mut rng)
        });
    });
}

fn bench_wallpaper_render(c: &mut Criterion) {
    use ccdem_simkit::rng::SimRng;
    use ccdem_workloads::app::{AppModel, ContentChange};
    use ccdem_workloads::wallpaper::{DotsConfig, DotsWallpaper};
    c.bench_function("workloads/dots_render_full_res", |b| {
        let mut rng = SimRng::seed_from_u64(2);
        let mut wp = DotsWallpaper::new(
            DotsConfig::nexus_revamped(),
            Resolution::GALAXY_S3,
            &mut rng,
        );
        let mut fb = FrameBuffer::new(Resolution::GALAXY_S3);
        b.iter(|| wp.render(ContentChange::Dots, &mut fb, &mut rng));
    });
}

criterion_group!(
    benches,
    bench_meter_observe,
    bench_section_lookup,
    bench_governor_window,
    bench_double_buffer_capture,
    bench_compose,
    bench_frame_budget_check,
    bench_workload_tick,
    bench_wallpaper_render
);
criterion_main!(benches);
