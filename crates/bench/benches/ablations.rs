//! Ablation benches: sweep the design knobs DESIGN.md calls out and time
//! the governed simulation under each setting. Each bench prints its
//! outcome table (saved power / quality / drops per configuration) once
//! before timing.
//!
//! Run with `cargo bench -p ccdem-bench --bench ablations`.

use ccdem_experiments::ablation::{
    boost_hold_sweep, control_window_sweep, down_dwell_sweep, grid_budget_sweep,
    mapper_rule_compare, psr_sweep, smoothing_sweep, AblationConfig,
};
use ccdem_simkit::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};

fn cfg() -> AblationConfig {
    AblationConfig {
        duration: SimDuration::from_secs(10),
        seed: 77,
        jobs: 0,
    }
}

fn bench_control_window(c: &mut Criterion) {
    let a = control_window_sweep(&cfg());
    println!("\n{a}");
    c.bench_function("ablation/control_window_sweep", |b| {
        b.iter(|| control_window_sweep(&cfg()))
    });
}

fn bench_grid_budget(c: &mut Criterion) {
    let a = grid_budget_sweep(&cfg());
    println!("\n{a}");
    c.bench_function("ablation/grid_budget_sweep", |b| {
        b.iter(|| grid_budget_sweep(&cfg()))
    });
}

fn bench_boost_hold(c: &mut Criterion) {
    let a = boost_hold_sweep(&cfg());
    println!("\n{a}");
    c.bench_function("ablation/boost_hold_sweep", |b| {
        b.iter(|| boost_hold_sweep(&cfg()))
    });
}

fn bench_mapper_rule(c: &mut Criterion) {
    let a = mapper_rule_compare(&cfg());
    println!("\n{a}");
    c.bench_function("ablation/mapper_rule_compare", |b| {
        b.iter(|| mapper_rule_compare(&cfg()))
    });
}

fn bench_smoothing(c: &mut Criterion) {
    let a = smoothing_sweep(&cfg());
    println!("\n{a}");
    c.bench_function("ablation/smoothing_sweep", |b| b.iter(|| smoothing_sweep(&cfg())));
}

fn bench_down_dwell(c: &mut Criterion) {
    let a = down_dwell_sweep(&cfg());
    println!("\n{a}");
    c.bench_function("ablation/down_dwell_sweep", |b| b.iter(|| down_dwell_sweep(&cfg())));
}

fn bench_psr(c: &mut Criterion) {
    let a = psr_sweep(&cfg());
    println!("\n{a}");
    c.bench_function("ablation/psr_sweep", |b| b.iter(|| psr_sweep(&cfg())));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_control_window, bench_grid_budget, bench_boost_hold, bench_mapper_rule,
              bench_smoothing, bench_down_dwell, bench_psr
}
criterion_main!(benches);
